package core

import (
	"math"
	"testing"

	"repro/internal/billboard"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestNoLocalTestingPrescribedRounds(t *testing.T) {
	d := NewNoLocalTesting(Params{}, 6)
	u, err := object.NewTopBeta(256, 0.05, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: d, N: 256, Alpha: 0.75, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log2(256.0)
	// The engine passes the universe's realized β (12/256 here, since
	// floor(0.05·256) = 12), not the nominal 0.05.
	want := int(math.Ceil(6 * (logN/(0.75*u.Beta()*256) + logN/0.75)))
	if res.Rounds != want {
		t.Fatalf("prescribed rounds = %d, want %d", res.Rounds, want)
	}
	if d.PrescribedRounds() != want {
		t.Fatalf("PrescribedRounds() = %d, want %d", d.PrescribedRounds(), want)
	}
}

func TestNoLocalTestingFindsTopBeta(t *testing.T) {
	results, err := sim.Replicator{
		Reps:     10,
		BaseSeed: 31,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewTopBeta(512, 0.02, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewNoLocalTesting(Params{}, 0), N: 512,
				Alpha: 0.8, Seed: seed,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(results)
	if agg.SuccessRate < 0.95 {
		t.Fatalf("no-local-testing success rate %v < 0.95", agg.SuccessRate)
	}
}

func TestNoLocalTestingSingleGoodObject(t *testing.T) {
	// β = 1/m: searching for the unique maximum-value object (§2.2).
	results, err := sim.Replicator{
		Reps:     8,
		BaseSeed: 37,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewTopBeta(128, 1.0/128, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewNoLocalTesting(Params{}, 0), N: 128,
				Alpha: 0.9, Seed: seed,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(results)
	if agg.SuccessRate < 0.9 {
		t.Fatalf("max-search success rate %v", agg.SuccessRate)
	}
}

func TestAlphaGuessInitValidation(t *testing.T) {
	g := NewAlphaGuess(Params{}, 4)
	u, err := object.NewTopBeta(16, 0.25, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Init(sim.Setup{N: 16, Alpha: 0.5, Beta: 0, Universe: u, Rng: rng.New(1)}); err == nil {
		t.Fatal("beta 0 accepted")
	}
}

func TestAlphaGuessPhasesAdvance(t *testing.T) {
	// With a tiny per-phase budget the wrapper must halve α repeatedly.
	g := NewAlphaGuess(Params{}, 0.001)
	u, err := object.NewUniverse(object.Config{
		Values: goodAt(16, 15), LocalTesting: true, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	board := mustTestBoard(t, 16, 16)
	if err := g.Init(sim.Setup{
		N: 16, Alpha: 1, Beta: 1.0 / 16, Universe: u, Board: board, Rng: rng.New(2),
	}); err != nil {
		t.Fatal(err)
	}
	if g.Phase() != 0 {
		t.Fatalf("initial phase = %d", g.Phase())
	}
	for round := 0; round < 100; round++ {
		g.Probes(round, nil, nil)
		board.EndRound()
	}
	if g.Phase() == 0 {
		t.Fatal("phase never advanced")
	}
	maxPhase := int(math.Ceil(math.Log2(16)))
	if g.Phase() > maxPhase {
		t.Fatalf("phase %d exceeded max %d", g.Phase(), maxPhase)
	}
}

func TestAlphaGuessSolvesUnknownAlpha(t *testing.T) {
	// True α = 0.5; the protocol is given a nonsense assumed α (1.0, via
	// AssumedAlpha) that it must ignore.
	results, err := sim.Replicator{
		Reps:     8,
		BaseSeed: 41,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: 256, Good: 1}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewAlphaGuess(Params{}, 0), N: 256,
				Alpha: 0.5, AssumedAlpha: 1, Seed: seed, MaxRounds: 50000,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(results)
	if agg.SuccessRate != 1 || agg.TimedOut > 0 {
		t.Fatalf("alphaguess: success %v timeouts %d", agg.SuccessRate, agg.TimedOut)
	}
}

func TestAlphaGuessOverheadBounded(t *testing.T) {
	// Knowing α exactly vs guessing it: guessing should cost at most a
	// small multiple (the §5.1 claim is "at most twice the last phase").
	run := func(proto sim.Protocol, assumed float64) float64 {
		results, err := sim.Replicator{
			Reps:     10,
			BaseSeed: 43,
			Build: func(seed uint64) (*sim.Engine, error) {
				u, err := object.NewPlanted(object.Planted{M: 256, Good: 1}, rng.New(seed))
				if err != nil {
					return nil, err
				}
				return sim.NewEngine(sim.Config{
					Universe: u, Protocol: proto, N: 256, Alpha: 0.5,
					AssumedAlpha: assumed, Seed: seed, MaxRounds: 50000,
				})
			},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sim.AggregateResults(results).MeanRounds
	}
	known := run(NewDistillHP(Params{}), 0.5)
	guessed := run(NewAlphaGuess(Params{}, 0), 1)
	t.Logf("known-α %.1f rounds, guessed-α %.1f rounds", known, guessed)
	if guessed > 20*known+50 {
		t.Fatalf("alpha guessing overhead too large: %.1f vs %.1f", guessed, known)
	}
}

func TestCostClassesInitValidation(t *testing.T) {
	c := NewCostClasses(Params{}, 4)
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{1, 0},
		Costs:        []float64{0.5, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	board := mustTestBoard(t, 4, 2)
	err = c.Init(sim.Setup{N: 4, Alpha: 1, Beta: 0.5, Universe: u, Board: board, Rng: rng.New(1)})
	if err == nil {
		t.Fatal("cost < 1 accepted")
	}
	if err := c.Init(sim.Setup{N: 4, Alpha: 0, Beta: 0.5, Universe: u, Board: board, Rng: rng.New(1)}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestCostClassesSearchesCheapFirst(t *testing.T) {
	// Two-tier universe: a cheap good object (cost 1) and expensive good
	// objects (cost 64). Honest players must find the cheap one paying a
	// total far below the expensive tier.
	results, err := sim.Replicator{
		Reps:     8,
		BaseSeed: 47,
		Build: func(seed uint64) (*sim.Engine, error) {
			src := rng.New(seed)
			const m = 256
			costs := make([]float64, m)
			values := make([]float64, m)
			for i := range costs {
				costs[i] = 64
			}
			// Cheap tier: objects 0..63 cost 1; one of them is good.
			for i := 0; i < 64; i++ {
				costs[i] = 1
			}
			values[src.Intn(64)] = 1
			// Also one expensive good object.
			values[64+src.Intn(m-64)] = 1
			u, err := object.NewUniverse(object.Config{
				Values: values, Costs: costs, LocalTesting: true, Threshold: 0.5,
			})
			if err != nil {
				return nil, err
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewCostClasses(Params{}, 0), N: 128,
				Alpha: 0.75, Seed: seed, MaxRounds: 100000,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	agg := sim.AggregateResults(results)
	if agg.SuccessRate != 1 || agg.TimedOut > 0 {
		t.Fatalf("cost classes: success %v timeouts %d", agg.SuccessRate, agg.TimedOut)
	}
	// Mean cost per player must be well below the cost of even one
	// expensive probe (64): players should finish inside the cheap class.
	if agg.MeanIndividualCost >= 64 {
		t.Fatalf("mean cost %v: players probed the expensive tier", agg.MeanIndividualCost)
	}
	t.Logf("mean individual cost %.1f (cheapest good costs 1)", agg.MeanIndividualCost)
}

func TestCostClassesClassIndexAdvances(t *testing.T) {
	// Universe whose only good object is expensive: the wrapper must leave
	// class 0 and advance.
	u, err := object.NewUniverse(object.Config{
		Values:       []float64{0, 0, 0, 1},
		Costs:        []float64{1, 1, 1, 8},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCostClasses(Params{}, 0.5)
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: c, N: 8, Alpha: 1, Seed: 3, MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHonestSatisfied() {
		t.Fatal("did not find the expensive good object")
	}
	if c.ClassIndex() != 1 {
		t.Fatalf("final class index = %d, want 1 (the class of cost 8)", c.ClassIndex())
	}
}

func TestThreePhaseSuccessWithSqrtNDishonest(t *testing.T) {
	// The §1.2 setting: m = n, √n dishonest players, one good object. The
	// three-phase algorithm succeeds with constant probability; measured
	// over replications the success rate should be clearly positive, and
	// with the spam adversary it should still not collapse.
	const n = 1024
	dishonest := int(math.Sqrt(float64(n)))
	results, err := sim.Replicator{
		Reps:     30,
		BaseSeed: 53,
		Build: func(seed uint64) (*sim.Engine, error) {
			u, err := object.NewPlanted(object.Planted{M: n, Good: 1}, rng.New(seed))
			if err != nil {
				return nil, err
			}
			honest := make([]int, 0, n-dishonest)
			for p := dishonest; p < n; p++ {
				honest = append(honest, p)
			}
			return sim.NewEngine(sim.Config{
				Universe: u, Protocol: NewThreePhase(), N: n, Honest: honest,
				Seed: seed,
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var successes []float64
	for _, r := range results {
		successes = append(successes, r.SuccessFraction())
		if r.Rounds > 7 {
			t.Fatalf("three-phase ran %d rounds, prescribed max is 7", r.Rounds)
		}
	}
	if mean := stats.Mean(successes); mean < 0.5 {
		t.Fatalf("three-phase mean success fraction %v < 0.5", mean)
	}
}

func TestThreePhasePrescribedLength(t *testing.T) {
	p := NewThreePhase()
	u, err := object.NewPlanted(object.Planted{M: 64, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Universe: u, Protocol: p, N: 64, Alpha: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 {
		t.Fatalf("rounds = %d, want 7", res.Rounds)
	}
}

func mustTestBoard(t *testing.T, players, objects int) *billboard.Board {
	t.Helper()
	b, err := billboard.New(billboard.Config{Players: players, Objects: objects})
	if err != nil {
		t.Fatal(err)
	}
	return b
}
