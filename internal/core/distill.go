// Package core implements the paper's primary contribution: Algorithm
// DISTILL (Figure 1) and its variants —
//
//   - Distill: the base algorithm of §4 (local testing, expected time
//     O(1/(αβn) + (1/α)·log n/Δ), Theorem 4);
//   - DISTILL^HP: k1, k2 = Θ(log n), terminating in O(log n/(αβn) + log n/α)
//     rounds with high probability (Theorem 11);
//   - NoLocalTesting: the §5.3 variant that runs for a prescribed number of
//     rounds with best-value votes (Theorem 13);
//   - AlphaGuess: the §5.1 halving wrapper for unknown α;
//   - CostClasses: the §5.2 wrapper for non-uniform object costs
//     (Theorem 12);
//   - ThreePhase: the simplified illustrative algorithm of §1.2.
//
// The protocol object is shared by all honest players: every player derives
// candidate sets from the same committed billboard, so computing them once
// per round is exactly the per-player computation of the paper, shared for
// efficiency.
package core

import (
	"fmt"
	"math"

	"repro/internal/billboard"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Params holds the tunable constants of Figure 1. The paper's proof uses
// k1 >= 1 and k2 >= 192 to make the constants in the union bounds work;
// empirically much smaller values give the same asymptotic behaviour with
// far better constants, so the defaults are practical rather than
// proof-grade. See EXPERIMENTS.md for the calibration.
type Params struct {
	// K1 scales the Step 1.1 exploration (default 2).
	K1 float64
	// K2 scales the Step 1.3 refinement and the C0 threshold K2/4
	// (default 8).
	K2 float64
	// Domain restricts all probing and candidate sets to these objects
	// (nil = all objects). Used by the §5.2 cost-class wrapper.
	Domain []int

	// Ablation switches (off in the paper's algorithm; see DESIGN.md §6).

	// DisableAdvice replaces the advice half of PROBE&SEEKADVICE with a
	// second explore probe. Lemma 6's fast termination argument no longer
	// applies; the A1 ablation measures the cost.
	DisableAdvice bool
	// ThresholdScale multiplies the survival thresholds k2/4 and n/(4c_t)
	// (default 1). Laxer thresholds admit more bad candidates; stricter
	// ones risk dropping the good object. The A3 ablation sweeps it.
	ThresholdScale float64
	// CumulativeCounts uses cumulative vote totals instead of
	// per-iteration window counts ℓ_t when filtering candidates. This lets
	// the adversary reuse old votes in every iteration, breaking the
	// budget argument of Lemma 7 (Equation 1). The A4 ablation shows it.
	CumulativeCounts bool

	// NegativeVeto > 0 enables the §6 "can bad recommendations help?"
	// extension: objects with at least NegativeVeto negative reports are
	// excluded from every candidate set. The base algorithm uses only
	// positive reports; the X2 experiment measures both the upside
	// (truthful negatives prune bad objects) and the downside (Byzantine
	// slander can veto the good object). If the veto empties a candidate
	// set, it is ignored for that set (fallback, so the search cannot
	// deadlock).
	NegativeVeto int
}

func (p *Params) applyDefaults() {
	if p.K1 == 0 {
		p.K1 = 2
	}
	if p.K2 == 0 {
		p.K2 = 8
	}
}

func (p Params) validate() error {
	if p.K1 < 0 || p.K2 < 0 {
		return fmt.Errorf("core: negative DISTILL constants k1=%v k2=%v", p.K1, p.K2)
	}
	return nil
}

// distillPhase tracks which step of ATTEMPT the shared schedule is in.
type distillPhase int

const (
	phasePrepare distillPhase = iota + 1 // Step 1.1: seed the billboard
	phaseRefine                          // Step 1.3: concentrate votes on S
	phaseDistill                         // Step 2: the while loop
)

// Distill is Algorithm DISTILL of Figure 1, usable as a sim.Protocol.
type Distill struct {
	params Params
	hp     bool // scale k1, k2 by log2(n) at Init (DISTILL^HP)
	// nltFactor > 0 selects the §5.3 no-local-testing variant: the run is
	// prescribed to ceil(nltFactor * (log2 n/(αβn) + log2 n/α)) rounds.
	nltFactor float64

	n, m        int
	alpha, beta float64
	k1, k2      float64 // effective constants after HP scaling
	src         *rng.Source
	board       billboard.Reader
	domain      []int        // probe space (Params.Domain or all objects)
	domainSet   map[int]bool // membership index, only when Params.Domain != nil

	prescribed int // computed at Init when nltFactor > 0; else 0

	phase       distillPhase
	invLeft     int   // invocations left in the current step
	half        int   // 0 = explore round, 1 = advice round
	windowStart int   // first round of the current vote-count window
	probeSet    []int // explore set of the current step
	candidates  []int // C_t during phaseDistill

	// Hot-path accessors resolved once at Init: the copy-free/buffered
	// billboard fast paths when the Reader supports them, the allocating
	// Reader methods otherwise (e.g. an RPC-backed board).
	wc         billboard.WindowCounts  // reused window-count buffer
	winCounter billboard.WindowCounter // nil → map fallback
	votesOf    func(player int) []billboard.Vote

	// Metrics.
	attempts       int
	iterationCount []int // while-loop iterations per completed attempt
	curIterations  int
	sSizes         []int // |S| at each Step 1.2
	c0Sizes        []int // |C0| at each Step 1.4 (0 when empty)
	ctSizes        []int // |C_t| after each Step 2.2 filtering
}

var _ sim.Protocol = (*Distill)(nil)

// NewDistill returns the base DISTILL protocol with the given parameters.
func NewDistill(params Params) *Distill {
	params.applyDefaults()
	return &Distill{params: params}
}

// NewDistillHP returns DISTILL^HP (§5): DISTILL with k1, k2 = Θ(log n).
// The log n factors are applied at Init time when n is known; K1 and K2 in
// params act as the Θ constants (defaults 1 and 4).
func NewDistillHP(params Params) *Distill {
	if params.K1 == 0 {
		params.K1 = 1
	}
	if params.K2 == 0 {
		params.K2 = 4
	}
	d := NewDistill(params)
	d.hp = true
	return d
}

// NewNoLocalTesting returns the §5.3 variant: DISTILL^HP run for a
// prescribed number of rounds with best-value votes, solving search without
// local testing (Theorem 13). factor is the constant in front of the
// prescribed O(log n/(αβn) + log n/α) round count (default 6).
func NewNoLocalTesting(params Params, factor float64) *Distill {
	d := NewDistillHP(params)
	if factor <= 0 {
		factor = 6
	}
	d.nltFactor = factor
	return d
}

// Name implements sim.Protocol.
func (d *Distill) Name() string {
	switch {
	case d.nltFactor > 0:
		return "distill-nlt"
	case d.hp:
		return "distill-hp"
	default:
		return "distill"
	}
}

// Init implements sim.Protocol.
func (d *Distill) Init(setup sim.Setup) error {
	if err := d.params.validate(); err != nil {
		return err
	}
	if setup.Alpha <= 0 || setup.Alpha > 1 {
		return fmt.Errorf("core: DISTILL needs assumed alpha in (0, 1], got %v", setup.Alpha)
	}
	if setup.Beta <= 0 || setup.Beta > 1 {
		return fmt.Errorf("core: DISTILL needs assumed beta in (0, 1], got %v", setup.Beta)
	}
	d.n = setup.N
	d.m = setup.Universe.M()
	d.alpha = setup.Alpha
	d.beta = setup.Beta
	d.src = setup.Rng
	d.board = setup.Board
	if wcb, ok := setup.Board.(billboard.WindowCounter); ok {
		d.winCounter = wcb
	} else {
		d.winCounter = nil
	}
	if vv, ok := setup.Board.(billboard.VotesViewer); ok {
		d.votesOf = vv.VotesView
	} else {
		d.votesOf = setup.Board.Votes
	}

	if d.params.Domain != nil {
		for _, obj := range d.params.Domain {
			if obj < 0 || obj >= d.m {
				return fmt.Errorf("core: domain object %d out of range [0, %d)", obj, d.m)
			}
		}
		d.domain = append([]int(nil), d.params.Domain...)
		if len(d.domain) == 0 {
			return fmt.Errorf("core: empty probe domain")
		}
		d.domainSet = make(map[int]bool, len(d.domain))
		for _, obj := range d.domain {
			d.domainSet[obj] = true
		}
	} else {
		d.domain = make([]int, d.m)
		for i := range d.domain {
			d.domain[i] = i
		}
	}

	logN := math.Log2(float64(d.n))
	if logN < 1 {
		logN = 1
	}
	d.k1, d.k2 = d.params.K1, d.params.K2
	if d.hp {
		d.k1 *= logN
		d.k2 *= logN
	}
	if d.nltFactor > 0 {
		d.prescribed = int(math.Ceil(d.nltFactor *
			(logN/(d.alpha*d.beta*float64(d.n)) + logN/d.alpha)))
		if d.prescribed < 1 {
			d.prescribed = 1
		}
	} else {
		d.prescribed = 0
	}

	d.attempts = 0
	d.curIterations = 0
	d.iterationCount = nil
	d.sSizes, d.c0Sizes, d.ctSizes = nil, nil, nil
	d.startAttempt(0)
	return nil
}

// PoolSizes reports the recorded candidate-machinery trajectory: |S| at
// each Step 1.2, |C0| at each Step 1.4, and |C_t| after each Step 2.2
// filtering. Experiment instrumentation; cheap to keep always-on.
func (d *Distill) PoolSizes() (s, c0, ct []int) {
	return append([]int(nil), d.sSizes...),
		append([]int(nil), d.c0Sizes...),
		append([]int(nil), d.ctSizes...)
}

// PrescribedRounds implements sim.Protocol.
func (d *Distill) PrescribedRounds() int {
	if d.prescribed > 0 {
		return d.prescribed
	}
	return 0
}

// Attempts returns the number of ATTEMPT invocations started so far.
func (d *Distill) Attempts() int { return d.attempts }

// IterationCounts returns the number of Step 2 while-loop iterations in
// each attempt so far, including the attempt in progress (the quantity
// Lemma 7 bounds by O(log n / Δ)).
func (d *Distill) IterationCounts() []int {
	out := append([]int(nil), d.iterationCount...)
	if d.attempts > 0 {
		out = append(out, d.curIterations)
	}
	return out
}

// invocations returns ceil(x) clamped to at least 1.
func invocations(x float64) int {
	k := int(math.Ceil(x))
	if k < 1 {
		k = 1
	}
	return k
}

// startAttempt resets the schedule to Step 1.1 of a fresh ATTEMPT.
func (d *Distill) startAttempt(round int) {
	if d.curIterations > 0 || d.attempts > 0 {
		d.iterationCount = append(d.iterationCount, d.curIterations)
	}
	d.curIterations = 0
	d.attempts++
	d.phase = phasePrepare
	d.invLeft = invocations(d.k1 / (d.alpha * d.beta * float64(d.n)))
	d.half = 0
	d.windowStart = round
	d.probeSet = d.applyVeto(d.domain)
}

// advance moves the schedule to the next step when the current one's
// invocations are exhausted. Called at the start of a round, before probing.
func (d *Distill) advance(round int) {
	for d.invLeft == 0 {
		switch d.phase {
		case phasePrepare:
			// Step 1.2: S = objects with at least one vote (within domain).
			s := d.applyVeto(d.votedInDomain())
			d.sSizes = append(d.sSizes, len(s))
			if len(s) == 0 {
				// Nothing recommended yet; explore the whole domain during
				// Step 1.3 instead of an empty set (robustness deviation;
				// C0 will then be computed from whatever votes appear).
				s = d.probeSet
			}
			d.phase = phaseRefine
			d.invLeft = invocations(d.k2 / d.alpha)
			d.windowStart = round
			d.probeSet = s
		case phaseRefine:
			// Step 1.4: C0 = objects with >= k2/4 votes during Step 1.3.
			d.loadWindowCounts(round)
			threshold := d.k2 / 4 * d.thresholdScale()
			c0 := d.filterDomain(func(c int) bool { return float64(c) >= threshold })
			if len(c0) > 0 {
				c0 = d.applyVeto(c0)
			}
			d.c0Sizes = append(d.c0Sizes, len(c0))
			if len(c0) == 0 {
				d.startAttempt(round)
				continue
			}
			d.phase = phaseDistill
			d.candidates = c0
			d.invLeft = invocations(1 / d.alpha)
			d.windowStart = round
			d.probeSet = c0
		case phaseDistill:
			// Step 2.2: keep candidates with ℓ_t(i) > n/(4 c_t).
			d.loadWindowCounts(round)
			ct := float64(len(d.candidates))
			threshold := float64(d.n) / (4 * ct) * d.thresholdScale()
			next := d.candidates[:0]
			for _, obj := range d.candidates {
				if float64(d.wc.Count(obj)) > threshold {
					next = append(next, obj)
				}
			}
			if len(next) > 0 {
				next = d.applyVeto(next)
			}
			d.candidates = next
			d.curIterations++
			d.ctSizes = append(d.ctSizes, len(next))
			if len(d.candidates) == 0 {
				d.startAttempt(round)
				continue
			}
			d.invLeft = invocations(1 / d.alpha)
			d.windowStart = round
			d.probeSet = d.candidates
		}
	}
}

// applyVeto removes objects with >= NegativeVeto negative reports, falling
// back to the unfiltered set if that would leave nothing to probe.
func (d *Distill) applyVeto(objs []int) []int {
	if d.params.NegativeVeto <= 0 {
		return objs
	}
	kept := make([]int, 0, len(objs))
	for _, obj := range objs {
		if d.board.NegativeCount(obj) < d.params.NegativeVeto {
			kept = append(kept, obj)
		}
	}
	if len(kept) == 0 {
		return objs
	}
	return kept
}

// thresholdScale returns the ablation multiplier (1 when unset).
func (d *Distill) thresholdScale() float64 {
	if d.params.ThresholdScale <= 0 {
		return 1
	}
	return d.params.ThresholdScale
}

// loadWindowCounts fills d.wc with the vote counts the candidate filters
// use: the per-window counts ℓ_t of Figure 1, or cumulative totals under
// the A4 ablation. Boards implementing billboard.WindowCounter (the local
// board; the hot path) fill the reused buffer with zero allocations;
// RPC-backed readers fall through to the map API.
func (d *Distill) loadWindowCounts(round int) {
	switch {
	case d.params.CumulativeCounts:
		d.wc.Reset(d.m)
		for _, obj := range d.board.VotedObjects() {
			d.wc.Add(obj, d.board.VoteCount(obj))
		}
	case d.winCounter != nil:
		d.winCounter.CountVotesInWindowInto(d.windowStart, round, &d.wc)
	default:
		d.wc.Reset(d.m)
		for obj, c := range d.board.CountVotesInWindow(d.windowStart, round) {
			d.wc.Add(obj, c)
		}
	}
}

// votedInDomain returns the domain objects that currently hold votes.
func (d *Distill) votedInDomain() []int {
	if d.params.Domain == nil {
		return d.board.VotedObjects()
	}
	out := make([]int, 0)
	for _, obj := range d.domain {
		if d.board.VoteCount(obj) > 0 {
			out = append(out, obj)
		}
	}
	return out
}

// filterDomain collects the objects in d.wc passing keep, restricted to
// the probe domain, in increasing object order (determinism).
func (d *Distill) filterDomain(keep func(int) bool) []int {
	out := make([]int, 0)
	if d.params.Domain == nil {
		// wc.Objects() is ascending, so the output is already sorted —
		// the same order the map-and-sort implementation produced.
		for _, obj := range d.wc.Objects() {
			if keep(d.wc.Count(obj)) {
				out = append(out, obj)
			}
		}
		return out
	}
	for _, obj := range d.domain {
		if keep(d.wc.Count(obj)) {
			out = append(out, obj)
		}
	}
	return out
}

// Probes implements sim.Protocol. Each PROBE&SEEKADVICE invocation spans
// two rounds: an explore round (probe a random object from the current set)
// and an advice round (probe the vote of a random player, if any) — per
// Lemma 6, "every second probe follows a vote of a randomly chosen player".
func (d *Distill) Probes(round int, active []int, dst []sim.Probe) []sim.Probe {
	d.BeginRound(round)
	for _, player := range active {
		if obj, ok := d.ProbeFor(d.src); ok {
			dst = append(dst, sim.Probe{Player: player, Object: obj})
		}
	}
	d.FinishRound()
	return dst
}

// BeginRound advances the shared schedule to this round's step. The
// schedule (phase, remaining invocations, candidate sets, vote windows)
// evolves from committed billboard state only — never from any random
// stream — so every honest player holds the identical schedule. Callers
// driving many players through one Distill (the swarm driver) call
// BeginRound once, then ProbeFor per player with that player's own stream,
// then FinishRound; Probes is exactly that loop over d.src.
func (d *Distill) BeginRound(round int) {
	if d.half == 0 {
		d.advance(round)
	}
}

// AdviceRound reports whether the current round (between BeginRound and
// FinishRound) is an advice half-round, i.e. ProbeFor will consult other
// players' votes. The swarm driver uses this to prefetch the round's vote
// reads in bulk before running the per-player draw loop.
func (d *Distill) AdviceRound() bool {
	return d.half == 1 && !d.params.DisableAdvice
}

// ProbeFor draws this round's probe choice for one player from src. The
// explore half always yields a probe; the advice half may yield none (no
// votes, domain mismatch, veto) — the player simply sits the round out.
func (d *Distill) ProbeFor(src *rng.Source) (int, bool) {
	if d.half == 0 || d.params.DisableAdvice {
		set := d.probeSet
		return set[src.Intn(len(set))], true
	}
	return d.adviceProbeFrom(src)
}

// FinishRound flips the explore/advice half and retires an invocation at
// the end of each advice round. Must be called exactly once per round,
// after every active player's ProbeFor.
func (d *Distill) FinishRound() {
	if d.half == 0 {
		d.half = 1
	} else {
		d.half = 0
		d.invLeft--
	}
}

// adviceProbeFrom picks a uniformly random player and returns one of its
// voted objects (uniformly), restricted to the probe domain, drawing from
// the given stream.
func (d *Distill) adviceProbeFrom(src *rng.Source) (int, bool) {
	j := src.Intn(d.n)
	votes := d.votesOf(j)
	if len(votes) == 0 {
		return 0, false
	}
	obj := votes[src.Intn(len(votes))].Object
	if d.domainSet != nil && !d.domainSet[obj] {
		return 0, false
	}
	if d.params.NegativeVeto > 0 && d.board.NegativeCount(obj) >= d.params.NegativeVeto {
		// The veto extension distrusts slandered objects consistently:
		// advice toward them is refused too.
		return 0, false
	}
	return obj, true
}
