package core

import (
	"testing"

	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestDistillSmoke(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		results, err := sim.Replicator{
			Reps:     10,
			BaseSeed: 7,
			Build: func(seed uint64) (*sim.Engine, error) {
				u, err := object.NewPlanted(object.Planted{M: n, Good: 1}, rng.New(seed))
				if err != nil {
					return nil, err
				}
				return sim.NewEngine(sim.Config{
					Universe: u, Protocol: NewDistill(Params{}), N: n, Alpha: 0.9,
					Seed: seed, MaxRounds: 5000,
				})
			},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		agg := sim.AggregateResults(results)
		t.Logf("n=%d: mean probes %.1f, mean rounds %.1f, timeouts %d",
			n, agg.MeanIndividualProbes, agg.MeanRounds, agg.TimedOut)
		if agg.TimedOut > 0 {
			t.Fatalf("n=%d: %d timeouts", n, agg.TimedOut)
		}
		if agg.SuccessRate != 1 {
			t.Fatalf("n=%d: success rate %v", n, agg.SuccessRate)
		}
	}
}
