package client

import "repro/internal/billboard"

// Cached wraps a Client with a per-round read cache. Billboard state only
// changes at round boundaries (the synchrony contract), so every read in a
// round can be served from the first RPC's result; the distributed player
// invalidates the cache after each Barrier. This cuts the advice-heavy
// protocols' RPC count by roughly the number of reads per round.
type Cached struct {
	c *Client

	votes    map[int][]billboard.Vote
	counts   map[int]int
	negs     map[int]int
	windows  map[[2]int]map[int]int
	objects  []int
	haveObjs bool
}

var _ billboard.Reader = (*Cached)(nil)

// NewCached wraps c. The caller must Invalidate after every round barrier.
func NewCached(c *Client) *Cached {
	cc := &Cached{c: c}
	cc.Invalidate()
	return cc
}

// Client returns the underlying connection (for Probe/Post/Barrier/Done).
func (cc *Cached) Client() *Client { return cc.c }

// Invalidate drops all cached reads; call after each Barrier.
func (cc *Cached) Invalidate() {
	cc.votes = make(map[int][]billboard.Vote)
	cc.counts = make(map[int]int)
	cc.negs = make(map[int]int)
	cc.windows = make(map[[2]int]map[int]int)
	cc.objects = nil
	cc.haveObjs = false
}

// Round returns the last observed round.
func (cc *Cached) Round() int { return cc.c.Round() }

// Votes returns player p's votes, cached for the round.
func (cc *Cached) Votes(player int) []billboard.Vote {
	if v, ok := cc.votes[player]; ok {
		return v
	}
	v := cc.c.Votes(player)
	cc.votes[player] = v
	return v
}

// HasVote reports whether player p holds a vote.
func (cc *Cached) HasVote(player int) bool { return len(cc.Votes(player)) > 0 }

// VoteCount returns object i's vote count, cached for the round.
func (cc *Cached) VoteCount(object int) int {
	if v, ok := cc.counts[object]; ok {
		return v
	}
	v := cc.c.VoteCount(object)
	cc.counts[object] = v
	return v
}

// NegativeCount returns object i's negative-report count, cached.
func (cc *Cached) NegativeCount(object int) int {
	if v, ok := cc.negs[object]; ok {
		return v
	}
	v := cc.c.NegativeCount(object)
	cc.negs[object] = v
	return v
}

// VotedObjects returns the voted-object set, cached for the round.
func (cc *Cached) VotedObjects() []int {
	if !cc.haveObjs {
		cc.objects = cc.c.VotedObjects()
		cc.haveObjs = true
	}
	return cc.objects
}

// NumVotedObjects returns the number of voted objects.
func (cc *Cached) NumVotedObjects() int { return len(cc.VotedObjects()) }

// CountVotesInWindow returns window counts, cached per window bounds.
func (cc *Cached) CountVotesInWindow(fromRound, toRound int) map[int]int {
	key := [2]int{fromRound, toRound}
	if v, ok := cc.windows[key]; ok {
		return v
	}
	v := cc.c.CountVotesInWindow(fromRound, toRound)
	cc.windows[key] = v
	return v
}
