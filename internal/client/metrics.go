package client

import (
	"io"

	"repro/internal/obs"
)

// clientMetrics bundles the client-side metric handles. With no registry
// the struct stays zero-valued — every handle is nil and recording is a
// single-branch no-op — so fault-tolerance bookkeeping costs nothing when
// observability is off.
type clientMetrics struct {
	enabled bool

	dials          *obs.Counter
	reconnects     *obs.Counter
	retries        *obs.Counter
	backoffSeconds *obs.Gauge
	framesSent     *obs.Counter
	bytesSent      *obs.Counter
}

// newClientMetrics registers the client_* metric family in reg. Several
// clients (one per player goroutine) typically share one registry; the
// counters then aggregate across the whole local player fleet. A nil reg
// returns the inert zero value.
func newClientMetrics(reg *obs.Registry) clientMetrics {
	if reg == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		enabled:        true,
		dials:          reg.Counter("client_dials_total", "transport dial attempts"),
		reconnects:     reg.Counter("client_reconnects_total", "dials that resumed an established session"),
		retries:        reg.Counter("client_retries_total", "request attempts beyond the first"),
		backoffSeconds: reg.Gauge("client_backoff_seconds_total", "cumulative time slept in retry backoff"),
		framesSent:     reg.Counter("client_frames_sent_total", "request frames written"),
		bytesSent:      reg.Counter("client_bytes_sent_total", "bytes written to the server"),
	}
}

// countingWriter attributes every byte written to client_bytes_sent_total.
// Installed between the encoder and the connection only when metrics are
// enabled.
type countingWriter struct {
	w     io.Writer
	bytes *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.bytes.Add(int64(n))
	return n, err
}
