package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// refusingDialer always fails, as a dead endpoint would.
func refusingDialer(addr string) (net.Conn, error) {
	return nil, errors.New("connection refused")
}

// TestDialContextCanceledStopsBackoff pins the cancellation contract: a
// canceled context cuts the dial's retry/backoff loop short and surfaces
// context.Canceled instead of grinding through every attempt.
func TestDialContextCanceledStopsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := DialContext(ctx, "127.0.0.1:1", 0, "tok", Options{
		Dialer:  refusingDialer,
		Retries: 1000,
		// Without cancellation this schedule would sleep for minutes.
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  time.Second,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled dial still took %v", elapsed)
	}
}

// TestDialExhaustionClassifiesDeadEndpoint pins the error contract: a dial
// that never completes a handshake wraps wire.ErrServerClosed.
func TestDialExhaustionClassifiesDeadEndpoint(t *testing.T) {
	_, err := DialContext(context.Background(), "127.0.0.1:1", 0, "tok", Options{
		Dialer:      refusingDialer,
		Retries:     2,
		BackoffBase: time.Microsecond,
		BackoffMax:  time.Microsecond,
	})
	if !errors.Is(err, wire.ErrServerClosed) {
		t.Fatalf("err = %v, want it to wrap wire.ErrServerClosed", err)
	}
}
