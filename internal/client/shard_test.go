package client

import (
	"testing"

	"repro/internal/wire"
)

// TestShardedPostIndexStampStableAcrossRetry is the regression test for the
// resume restamp bug: the scatter path retries a sub-batch after a lane
// reconnect, and re-entering the stamp must not move the indices already
// assigned — commit order is (player, index), so a restamp would reorder
// the replayed posts against their journaled duplicates. The stamp is a
// pure function of the uncommitted postSeq; only commitIndices advances it,
// and only after every lane acknowledged the batch.
func TestShardedPostIndexStampStableAcrossRetry(t *testing.T) {
	c := &Client{shards: 4, postSeq: 3}
	msgs := []wire.PostMsg{{Object: 0}, {Object: 5}, {Object: 9}}

	c.stampIndices(msgs)
	for i, want := range []int{3, 4, 5} {
		if msgs[i].Index != want {
			t.Fatalf("msg %d stamped %d, want %d", i, msgs[i].Index, want)
		}
	}

	// A retry re-enters the stamp path before the batch commits (the resend
	// after a lane drop); the indices must be byte-identical.
	c.stampIndices(msgs)
	for i, want := range []int{3, 4, 5} {
		if msgs[i].Index != want {
			t.Fatalf("msg %d restamped to %d, want %d unchanged", i, msgs[i].Index, want)
		}
	}
	if c.postSeq != 3 {
		t.Fatalf("postSeq advanced to %d before commit", c.postSeq)
	}

	c.commitIndices(msgs)
	if c.postSeq != 6 {
		t.Fatalf("postSeq = %d after commit, want 6", c.postSeq)
	}
	next := []wire.PostMsg{{Object: 2}}
	c.stampIndices(next)
	if next[0].Index != 6 {
		t.Fatalf("next batch stamped %d, want 6", next[0].Index)
	}
}
