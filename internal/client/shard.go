package client

// Shard-lane data plane (wire protocol v4). Against a sharded server the
// client keeps one lane connection per shard — dialed lazily, resumed
// independently — and splits each round's post batch by the shared shard
// map, pipelining the per-shard sub-batches concurrently. Each post carries
// a client-assigned running index, so the server's commit reassembles the
// player's original posting order no matter how the lanes interleaved.
// Reads, probes, and barriers stay on the primary connection; only posts
// scatter.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/wire"
)

// clientLane is the client half of one shard-lane connection: its own
// session, sequence counter, transport, and backoff jitter, so concurrent
// per-shard sends never share mutable state.
type clientLane struct {
	shard   int
	session uint64
	seq     uint64
	conn    net.Conn
	w       io.Writer
	br      *bufio.Reader
	enc     *wire.StreamEncoder // connection-scoped codecs (protocol v6):
	dec     *wire.StreamDecoder // the lane hot path encodes with no codec compile
	jitter  *rng.Source
}

// setupLanes builds the lane table once the Hello reply advertised the
// server's shard count. Connections are dialed lazily at first use.
func (c *Client) setupLanes(shards int) {
	c.shards = shards
	if shards <= 1 || len(c.lanes) == shards {
		return
	}
	c.lanes = make([]*clientLane, shards)
	for k := range c.lanes {
		c.lanes[k] = &clientLane{
			shard:   k,
			session: newSessionID(c.player),
			jitter:  rng.New(c.opt.Seed).Split(uint64(c.player)).Split(0x10000 + uint64(k)),
		}
	}
}

// laneConnect dials and lane-Hellos one shard connection (resuming the
// lane's session on reconnect, exactly like the primary).
func (c *Client) laneConnect(l *clientLane) error {
	c.met.dials.Inc()
	nc, err := c.opt.Dialer(c.curAddr())
	if err != nil {
		c.rotateAddr()
		return fmt.Errorf("client: lane %d: %w", l.shard, err)
	}
	var w io.Writer = nc
	if c.met.enabled {
		w = &countingWriter{w: nc, bytes: c.met.bytesSent}
	}
	br := bufio.NewReader(nc)
	enc, dec := wire.NewStreamEncoder(w), wire.NewStreamDecoder(br)
	if c.opt.CallTimeout > 0 {
		nc.SetDeadline(time.Now().Add(c.opt.CallTimeout))
	}
	req := wire.Request{
		Type: wire.ReqHello, Player: c.player, Token: c.token,
		Version: wire.Version, Session: l.session,
		Lane: true, Shard: l.shard,
	}
	if err := enc.EncodeRequest(&req); err != nil {
		nc.Close()
		return fmt.Errorf("client: lane %d hello: %w", l.shard, err)
	}
	c.met.framesSent.Inc()
	var resp wire.Response
	if err := dec.DecodeResponse(&resp); err != nil {
		nc.Close()
		return fmt.Errorf("client: lane %d hello: %w", l.shard, err)
	}
	nc.SetDeadline(time.Time{})
	if e := resp.Error(); e != nil {
		nc.Close()
		if errors.Is(e, wire.ErrNotLeader) {
			c.adoptLeader(resp.Leader)
			return fmt.Errorf("client: lane %d hello: %w", l.shard, e) // retryable
		}
		return &serverError{e}
	}
	l.conn, l.w, l.br = nc, w, br
	l.enc, l.dec = enc, dec
	return nil
}

func (l *clientLane) drop() {
	if l.conn != nil {
		l.conn.Close()
		l.conn, l.w, l.br = nil, nil, nil
		l.enc, l.dec = nil, nil
	}
}

// laneCall runs one sequenced request on a lane with the same
// reconnect/resume/retry loop as the primary call path. Safe to run
// concurrently across distinct lanes: it touches only the lane's state and
// the client's atomic metrics. It never latches c.lastErr — the scatter
// join does that single-threaded.
func (c *Client) laneCall(l *clientLane, req wire.Request) (*wire.Response, error) {
	if c.closed {
		return nil, ErrClosed
	}
	l.seq++
	req.Session = l.session
	req.Seq = l.seq
	var last error
	dialFailed := false
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			if err := c.pause(c.backoffWith(l.jitter, attempt)); err != nil {
				return nil, err // context canceled mid-backoff
			}
		}
		if l.conn == nil {
			if err := c.laneConnect(l); err != nil {
				var perm *serverError
				if errors.As(err, &perm) {
					return nil, fmt.Errorf("client: lane %d resume: %w", l.shard, perm.err)
				}
				dialFailed = true
				last = err
				continue
			}
			c.met.reconnects.Inc()
		}
		dialFailed = false
		if c.opt.CallTimeout > 0 {
			l.conn.SetDeadline(time.Now().Add(c.opt.CallTimeout))
		}
		if err := l.enc.EncodeRequest(&req); err != nil {
			l.drop()
			last = fmt.Errorf("client: lane %d send: %w", l.shard, err)
			continue
		}
		c.met.framesSent.Inc()
		resp := new(wire.Response)
		if err := l.dec.DecodeResponse(resp); err != nil {
			l.drop()
			last = fmt.Errorf("client: lane %d recv: %w", l.shard, err)
			continue
		}
		if c.opt.CallTimeout > 0 {
			l.conn.SetDeadline(time.Time{})
		}
		if err := resp.Error(); err != nil {
			if errors.Is(err, wire.ErrNotLeader) {
				c.adoptLeader(resp.Leader)
				l.drop()
				last = err
				continue
			}
			return nil, err
		}
		return resp, nil
	}
	if dialFailed {
		// The final attempt never reached a live server — the best-effort
		// dead-endpoint classification the ErrServerClosed contract promises.
		return nil, &exhaustedError{fmt.Errorf("client: lane %d: retries exhausted: %w (%w)", l.shard, last, wire.ErrServerClosed)}
	}
	return nil, &exhaustedError{fmt.Errorf("client: lane %d: retries exhausted: %w", l.shard, last)}
}

// exhaustedError marks a transport failure retries could not recover; the
// single-threaded caller latches it into c.lastErr.
type exhaustedError struct{ err error }

func (e *exhaustedError) Error() string { return e.err.Error() }
func (e *exhaustedError) Unwrap() error { return e.err }

// scatterPosts splits an indexed batch by the shard map and sends the
// per-shard sub-batches concurrently, one goroutine per nonempty lane. The
// first failure is returned (and, if it was transport exhaustion, latched
// as the client's sticky error).
func (c *Client) scatterPosts(msgs []wire.PostMsg) error {
	parts := make([][]wire.PostMsg, c.shards)
	for _, m := range msgs {
		k := wire.Shard(m.Object, c.shards)
		parts[k] = append(parts[k], m)
	}
	lanes := 0
	lastLane := -1
	for k, part := range parts {
		if len(part) > 0 {
			lanes++
			lastLane = k
		}
	}
	var firstErr error
	if lanes == 1 {
		_, firstErr = c.laneCall(c.lanes[lastLane], wire.Request{
			Type: wire.ReqPostBatch, Posts: parts[lastLane], Shard: lastLane,
		})
	} else {
		errs := make([]error, c.shards)
		var wg sync.WaitGroup
		for k, part := range parts {
			if len(part) == 0 {
				continue
			}
			wg.Add(1)
			go func(k int, part []wire.PostMsg) {
				defer wg.Done()
				_, errs[k] = c.laneCall(c.lanes[k], wire.Request{
					Type: wire.ReqPostBatch, Posts: part, Shard: k,
				})
			}(k, part)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		var ex *exhaustedError
		if errors.As(firstErr, &ex) && c.lastErr == nil {
			c.lastErr = firstErr
		}
		return firstErr
	}
	return nil
}

// stampIndices assigns the client's running post index to a batch — the
// order key the sharded server commits by — without advancing the counter.
// The caller commits the advance with commitIndices only after the scatter
// succeeded: a batch that failed mid-flight (a lane answering "server
// closed" during a shard bounce, say) leaves the counter untouched, so a
// retry after the session resumes re-stamps the very same indices instead
// of double-advancing the running index and tearing a hole in the player's
// commit order. Only used when sharded, so the classic 1-shard wire
// traffic stays exactly as before.
func (c *Client) stampIndices(msgs []wire.PostMsg) {
	for i := range msgs {
		msgs[i].Index = c.postSeq + i
	}
}

// commitIndices advances the running post index past a successfully
// scattered batch.
func (c *Client) commitIndices(msgs []wire.PostMsg) {
	c.postSeq += len(msgs)
}

// Shards reports the server-advertised shard count (1 for an unsharded
// server; 0 before the first successful Hello).
func (c *Client) Shards() int { return c.shards }

// closeLanes tears down the lane connections (Close path).
func (c *Client) closeLanes() {
	for _, l := range c.lanes {
		l.drop()
	}
}
