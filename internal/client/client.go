// Package client is the player-side library for the networked billboard
// service (internal/server). A Client implements billboard.Reader and
// sim.PublicUniverse against the remote server, so the very same protocol
// code (core.Distill and friends) that runs in the in-process engine drives
// a distributed player over TCP.
package client

import (
	"encoding/gob"
	"fmt"
	"net"

	"repro/internal/billboard"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Client is one player's authenticated connection to a billboard server.
// It is not safe for concurrent use; each player goroutine owns one Client.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	player       int
	n, m         int
	localTesting bool
	alpha, beta  float64
	costs        []float64
	round        int
}

var (
	_ billboard.Reader   = (*Client)(nil)
	_ sim.PublicUniverse = (*Client)(nil)
)

// Dial connects and authenticates as the given player.
func Dial(addr string, player int, token string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{
		conn:   conn,
		enc:    gob.NewEncoder(conn),
		dec:    gob.NewDecoder(conn),
		player: player,
	}
	resp, err := c.call(wire.Request{
		Type: wire.ReqHello, Player: player, Token: token, Version: wire.Version,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.n = resp.N
	c.m = resp.M
	c.localTesting = resp.LocalTesting
	c.alpha = resp.Alpha
	c.beta = resp.Beta
	c.costs = resp.Costs
	c.round = resp.Round
	return c, nil
}

// Close tears down the connection. The server treats a dropped connection
// as Done, so closing mid-round cannot wedge the barrier.
func (c *Client) Close() error { return c.conn.Close() }

// Player returns the authenticated player id.
func (c *Client) Player() int { return c.player }

// N returns the total number of players.
func (c *Client) N() int { return c.n }

// Alpha returns the server-advertised assumed honest fraction.
func (c *Client) Alpha() float64 { return c.alpha }

// Beta returns the server-advertised assumed good fraction.
func (c *Client) Beta() float64 { return c.beta }

func (c *Client) call(req wire.Request) (*wire.Response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("client: send %v: %w", req.Type, err)
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: recv %v: %w", req.Type, err)
	}
	if resp.Round > c.round {
		c.round = resp.Round
	}
	if err := resp.Error(); err != nil {
		return nil, err
	}
	return &resp, nil
}

// sim.PublicUniverse implementation (from the Hello payload).

// M returns the number of objects.
func (c *Client) M() int { return c.m }

// Cost returns the public cost of object i.
func (c *Client) Cost(i int) float64 { return c.costs[i] }

// LocalTesting reports the goodness model.
func (c *Client) LocalTesting() bool { return c.localTesting }

// ProbeResult is what a probe reveals to the prober.
type ProbeResult struct {
	Value float64
	Good  bool // meaningful only with local testing
	Cost  float64
}

// Probe pays object obj's cost and reveals its value (plus goodness under
// local testing).
func (c *Client) Probe(obj int) (ProbeResult, error) {
	resp, err := c.call(wire.Request{Type: wire.ReqProbe, Object: obj})
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{Value: resp.Value, Good: resp.Good, Cost: resp.Cost}, nil
}

// Post appends a report under the client's authenticated identity.
func (c *Client) Post(obj int, value float64, positive bool) error {
	_, err := c.call(wire.Request{Type: wire.ReqPost, Object: obj, Value: value, Positive: positive})
	return err
}

// Barrier ends the caller's round and blocks until the server commits it.
// It returns the new round number.
func (c *Client) Barrier() (int, error) {
	resp, err := c.call(wire.Request{Type: wire.ReqBarrier})
	if err != nil {
		return 0, err
	}
	return resp.Round, nil
}

// Done deregisters the player from future rounds.
func (c *Client) Done() error {
	_, err := c.call(wire.Request{Type: wire.ReqDone})
	return err
}

// billboard.Reader implementation (RPC-backed). Errors are not expressible
// through the Reader interface, so transport failures surface as zero
// values here and as errors on the next explicit call; the distributed
// runner always finishes rounds with explicit calls (Probe/Post/Barrier),
// which do report errors.

// Round returns the last round number observed from the server.
func (c *Client) Round() int { return c.round }

// Votes returns player p's committed votes.
func (c *Client) Votes(player int) []billboard.Vote {
	resp, err := c.call(wire.Request{Type: wire.ReqVotes, OfPlayer: player})
	if err != nil {
		return nil
	}
	votes := make([]billboard.Vote, len(resp.Votes))
	for i, v := range resp.Votes {
		votes[i] = billboard.Vote{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value}
	}
	return votes
}

// HasVote reports whether player p has a committed vote.
func (c *Client) HasVote(player int) bool { return len(c.Votes(player)) > 0 }

// VoteCount returns object i's committed vote count.
func (c *Client) VoteCount(object int) int {
	resp, err := c.call(wire.Request{Type: wire.ReqVoteCount, Object: object})
	if err != nil {
		return 0
	}
	return resp.Count
}

// NegativeCount returns object i's negative-report count.
func (c *Client) NegativeCount(object int) int {
	resp, err := c.call(wire.Request{Type: wire.ReqNegCount, Object: object})
	if err != nil {
		return 0
	}
	return resp.Count
}

// VotedObjects returns the objects currently holding votes.
func (c *Client) VotedObjects() []int {
	resp, err := c.call(wire.Request{Type: wire.ReqVotedObjects})
	if err != nil {
		return nil
	}
	return resp.Objects
}

// NumVotedObjects returns the number of objects holding votes.
func (c *Client) NumVotedObjects() int { return len(c.VotedObjects()) }

// CountVotesInWindow counts vote events per object in [fromRound, toRound).
func (c *Client) CountVotesInWindow(fromRound, toRound int) map[int]int {
	resp, err := c.call(wire.Request{Type: wire.ReqWindow, From: fromRound, To: toRound})
	if err != nil {
		return map[int]int{}
	}
	if resp.Counts == nil {
		return map[int]int{}
	}
	return resp.Counts
}
