// Package client is the player-side library for the networked billboard
// service (internal/server). A Client implements billboard.Reader and
// sim.PublicUniverse against the remote server, so the very same protocol
// code (core.Distill and friends) that runs in the in-process engine drives
// a distributed player over TCP.
//
// The transport is fault tolerant beneath that surface: every call carries
// a session id and sequence number (wire protocol v2), and on a transport
// failure the client reconnects, resumes its session, and retries the
// in-flight request with exponential backoff and jitter, bounded by
// Options.Retries and per-call deadlines. The server deduplicates on the
// sequence number, so a retry never re-executes a request whose response
// was lost — in particular, a retried Probe is never charged twice.
package client

import (
	"bufio"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/billboard"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Options tunes the client's fault tolerance. The zero value gives sane
// defaults, preserving the original Dial signature's behavior plus
// automatic reconnect.
type Options struct {
	// Dialer overrides the transport dial (default net.Dial "tcp") — the
	// hook internal/faultnet uses for deterministic fault injection.
	Dialer func(addr string) (net.Conn, error)
	// Retries is how many times a failed call is retried (reconnecting and
	// resuming the session first) before the error is reported. Default 8.
	// Negative disables retries.
	Retries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries; actual waits are fully jittered — uniform in (0, step].
	// Defaults 5ms and 500ms.
	BackoffBase, BackoffMax time.Duration
	// CallTimeout bounds one attempt of a non-barrier call (connect,
	// probe, post, reads). Default 30s; negative disables the deadline.
	CallTimeout time.Duration
	// BarrierTimeout bounds one attempt of a Barrier call. Barriers block
	// legitimately while other players finish their rounds, so the default
	// is 0 (no deadline); set it when fault injection can swallow a
	// barrier request (the retry resumes the session and re-arrives
	// idempotently).
	BarrierTimeout time.Duration
	// EpochPoll is the sleep between epoch pacing polls against an
	// epoch-mode server (wire protocol v8): epoch frames never block, so
	// the client re-asks at this cadence until the epoch it is waiting on
	// seals. Default 2ms; negative disables the sleep (busy poll).
	EpochPoll time.Duration
	// Seed drives the backoff jitter (default: derived from the player id).
	Seed uint64
	// Fallbacks lists additional server addresses (the other members of a
	// replicated coordinator group). A not-leader rejection steers the
	// client straight to the address the rejection names; a dial failure
	// rotates to the next address in the ring. Empty keeps the classic
	// single-address behavior.
	Fallbacks []string
	// Metrics, when non-nil, receives the client_* metric family (dials,
	// reconnects, retries, backoff time, frames and bytes sent). Share one
	// registry across a fleet of clients to aggregate. Nil disables
	// recording at the cost of one branch per event.
	Metrics *obs.Registry
}

func (o Options) withDefaults(player int) Options {
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.Retries == 0 {
		o.Retries = 8
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.CallTimeout < 0 {
		o.CallTimeout = 0
	}
	if o.EpochPoll == 0 {
		o.EpochPoll = 2 * time.Millisecond
	}
	if o.EpochPoll < 0 {
		o.EpochPoll = 0
	}
	if o.Seed == 0 {
		o.Seed = 0x9e3779b97f4a7c15 ^ uint64(player)
	}
	return o
}

// sessionCounter backs session-id generation when crypto/rand fails.
var sessionCounter atomic.Uint64

// newSessionID picks the client-chosen session id: unique is all that
// matters (it names the session for resume; it carries no randomness the
// simulation depends on).
func newSessionID(player int) uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return sessionCounter.Add(1)<<16 | uint64(player&0xffff) | 1
}

// Client is one player's authenticated connection to a billboard server.
// It is not safe for concurrent use; each player goroutine owns one Client.
type Client struct {
	// addrMu guards the address state: concurrent lane calls share it when
	// a failover steers the whole client to a new leader.
	addrMu  sync.Mutex
	addr    string   // current target: the last leader hint or rotation pick
	addrs   []string // rotation ring: primary + Options.Fallbacks
	addrIdx int

	token  string
	player int
	opt    Options

	ctx     context.Context // cancels backoff sleeps and retry loops
	session uint64
	seq     uint64
	conn    net.Conn
	w       io.Writer // encode path: conn, or a counting wrapper over it
	br      *bufio.Reader
	enc     *wire.StreamEncoder // connection-scoped codecs (protocol v6),
	dec     *wire.StreamDecoder // rebuilt with every reconnect
	jitter  *rng.Source
	closed  bool  // set by Close: no further calls, no reconnects
	lastErr error // first unrecovered transport failure; sticky
	resumed bool  // a Hello has succeeded before: later connects are resumes
	met     clientMetrics

	shards  int           // server-advertised shard count (from Hello)
	lanes   []*clientLane // one per shard when shards > 1
	postSeq int           // running index stamped on every sharded post
	epoch   bool          // server runs in epoch mode (from Hello)

	n, m         int
	localTesting bool
	alpha, beta  float64
	costs        []float64
	round        int
}

var (
	_ billboard.Reader   = (*Client)(nil)
	_ sim.PublicUniverse = (*Client)(nil)
)

// serverError marks an application-level rejection from the server during
// connect — permanent: retrying the same credentials cannot succeed.
type serverError struct{ err error }

func (e *serverError) Error() string { return e.err.Error() }
func (e *serverError) Unwrap() error { return e.err }

// Dial connects and authenticates as the given player with default
// Options.
func Dial(addr string, player int, token string) (*Client, error) {
	return DialContext(context.Background(), addr, player, token, Options{})
}

// DialOptions connects and authenticates as the given player, retrying
// transport failures per opt.
func DialOptions(addr string, player int, token string, opt Options) (*Client, error) {
	return DialContext(context.Background(), addr, player, token, opt)
}

// DialContext is DialOptions under a context: cancellation interrupts the
// dial's backoff sleeps, and the context stays attached to the client,
// cutting short every later reconnect/retry loop. A nil ctx means
// context.Background().
func DialContext(ctx context.Context, addr string, player int, token string, opt Options) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults(player)
	c := &Client{
		addr:    addr,
		addrs:   []string{addr},
		token:   token,
		player:  player,
		opt:     opt,
		ctx:     ctx,
		session: newSessionID(player),
		jitter:  rng.New(opt.Seed).Split(uint64(player)),
		met:     newClientMetrics(opt.Metrics),
	}
	for _, fb := range opt.Fallbacks {
		if fb != "" && fb != addr {
			c.addrs = append(c.addrs, fb)
		}
	}
	var last error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			if err := c.sleepBackoff(attempt); err != nil {
				return nil, fmt.Errorf("client: dial %s: %w", addr, err)
			}
		}
		if err := c.connect(); err != nil {
			var perm *serverError
			if errors.As(err, &perm) {
				return nil, perm.err
			}
			last = err
			continue
		}
		return c, nil
	}
	// Every attempt failed to complete a handshake: classify the endpoint
	// as dead so callers can match with errors.Is(err, wire.ErrServerClosed).
	return nil, fmt.Errorf("client: dial %s: retries exhausted: %w (%w)", addr, last, wire.ErrServerClosed)
}

// curAddr returns the address calls currently target.
func (c *Client) curAddr() string {
	c.addrMu.Lock()
	defer c.addrMu.Unlock()
	return c.addr
}

// adoptLeader steers the client to the address a not-leader rejection named
// (or rotates when the rejecting replica did not know the leader).
func (c *Client) adoptLeader(addr string) {
	c.addrMu.Lock()
	defer c.addrMu.Unlock()
	if addr != "" {
		c.addr = addr
		return
	}
	c.rotateAddrLocked()
}

// rotateAddr advances to the next address in the fallback ring.
func (c *Client) rotateAddr() {
	c.addrMu.Lock()
	defer c.addrMu.Unlock()
	c.rotateAddrLocked()
}

func (c *Client) rotateAddrLocked() {
	if len(c.addrs) <= 1 {
		return
	}
	c.addrIdx = (c.addrIdx + 1) % len(c.addrs)
	c.addr = c.addrs[c.addrIdx]
}

// connect dials and performs the Hello handshake. Because the session id is
// fixed at construction, a reconnect resumes the session: registration,
// vote state, and the server-side dedup window all survive. Address
// steering lives here: a dial failure rotates the fallback ring, a
// not-leader rejection adopts the leader it names — both return retryable
// errors so the caller's loop tries the new address.
func (c *Client) connect() error {
	c.met.dials.Inc()
	if c.resumed {
		c.met.reconnects.Inc()
	}
	nc, err := c.opt.Dialer(c.curAddr())
	if err != nil {
		c.rotateAddr()
		return fmt.Errorf("client: %w", err)
	}
	var w io.Writer = nc
	if c.met.enabled {
		w = &countingWriter{w: nc, bytes: c.met.bytesSent}
	}
	br := bufio.NewReader(nc)
	enc, dec := wire.NewStreamEncoder(w), wire.NewStreamDecoder(br)
	if c.opt.CallTimeout > 0 {
		nc.SetDeadline(time.Now().Add(c.opt.CallTimeout))
	}
	req := wire.Request{
		Type: wire.ReqHello, Player: c.player, Token: c.token,
		Version: wire.Version, Session: c.session,
	}
	if err := enc.EncodeRequest(&req); err != nil {
		nc.Close()
		return fmt.Errorf("client: send hello: %w", err)
	}
	c.met.framesSent.Inc()
	var resp wire.Response
	if err := dec.DecodeResponse(&resp); err != nil {
		nc.Close()
		return fmt.Errorf("client: recv hello: %w", err)
	}
	nc.SetDeadline(time.Time{})
	if e := resp.Error(); e != nil {
		nc.Close()
		if errors.Is(e, wire.ErrNotLeader) {
			c.adoptLeader(resp.Leader)
			return fmt.Errorf("client: hello: %w", e) // retryable: try the leader
		}
		return &serverError{e}
	}
	c.conn, c.w, c.br = nc, w, br
	c.enc, c.dec = enc, dec
	c.resumed = true
	c.n = resp.N
	c.m = resp.M
	c.localTesting = resp.LocalTesting
	c.alpha = resp.Alpha
	c.beta = resp.Beta
	c.costs = resp.Costs
	if resp.Round > c.round {
		c.round = resp.Round
	}
	c.epoch = resp.Mode == wire.ModeEpoch
	sh := resp.Shards
	if sh < 1 {
		sh = 1
	}
	c.setupLanes(sh)
	return nil
}

// drop severs the current transport (keeping the session resumable).
func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.w, c.br = nil, nil, nil
		c.enc, c.dec = nil, nil
	}
}

// backoff returns the fully-jittered exponential backoff for an attempt
// (1-based): uniform in (0, min(base·2^(attempt-1), max)], or zero for
// degenerate configs. DialOptions normalizes non-positive knobs, but a
// zero-valued Options reaching this path directly (or a doubling overflow)
// must yield an immediate retry, not a panic in Uint64n(0).
func (c *Client) backoff(attempt int) time.Duration {
	return c.backoffWith(c.jitter, attempt)
}

// backoffWith is backoff drawing jitter from an explicit source — shard
// lanes each carry their own so concurrent retries never share RNG state.
func (c *Client) backoffWith(src *rng.Source, attempt int) time.Duration {
	step := c.opt.BackoffBase
	for i := 1; i < attempt && step > 0 && step < c.opt.BackoffMax; i++ {
		step *= 2 // overflow drives step non-positive and exits the loop
	}
	if step > c.opt.BackoffMax || step < 0 {
		step = c.opt.BackoffMax
	}
	if step <= 0 {
		return 0
	}
	return time.Duration(1 + src.Uint64n(uint64(step)))
}

// pause sleeps for d, attributing the wait to client_backoff_seconds_total,
// and returns early with the context's error if it is canceled first.
func (c *Client) pause(d time.Duration) error {
	c.met.backoffSeconds.Add(d.Seconds())
	if c.ctx == nil {
		time.Sleep(d)
		return nil
	}
	if d <= 0 {
		return c.ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// sleepBackoff sleeps the jittered backoff for an attempt; a non-nil error
// means the client's context was canceled mid-wait.
func (c *Client) sleepBackoff(attempt int) error {
	return c.pause(c.backoff(attempt))
}

// Close tears down the connection without Done. With a session grace
// window the server keeps the session resumable until the lease expires;
// with no grace (the default server config) it treats the drop as Done, so
// closing mid-round cannot wedge the barrier.
func (c *Client) Close() error {
	c.closed = true
	c.closeLanes()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.w, c.br = nil, nil, nil
	return err
}

// ErrClosed is returned by calls made after Close.
var ErrClosed = errors.New("client: closed")

// Abort severs the transports abruptly — as a crash or network fault would —
// leaving the client usable: the next call reconnects and resumes the
// sessions (within the server's grace window). Test and chaos hook.
func (c *Client) Abort() {
	c.drop()
	c.closeLanes()
}

// Err reports the first transport failure that retries could not recover
// (nil while the session is healthy). The billboard.Reader methods cannot
// return errors — they report zero values on failure and record it here;
// callers (internal/dist) should check Err once per round.
func (c *Client) Err() error { return c.lastErr }

// Player returns the authenticated player id.
func (c *Client) Player() int { return c.player }

// N returns the total number of players.
func (c *Client) N() int { return c.n }

// Alpha returns the server-advertised assumed honest fraction.
func (c *Client) Alpha() float64 { return c.alpha }

// Beta returns the server-advertised assumed good fraction.
func (c *Client) Beta() float64 { return c.beta }

// call runs one sequenced request, transparently reconnecting, resuming
// the session, and retrying on transport failures. Application-level
// errors from the server are returned as-is and are not retried.
func (c *Client) call(req wire.Request) (*wire.Response, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if c.lastErr != nil {
		return nil, c.lastErr
	}
	c.seq++
	req.Session = c.session
	req.Seq = c.seq
	timeout := c.opt.CallTimeout
	if !c.epoch && (req.Type == wire.ReqBarrier || (req.Type == wire.ReqPostBatch && req.EndRound)) {
		// Both block legitimately while other players finish their rounds.
		// In epoch mode neither blocks server-side, so the ordinary call
		// deadline applies.
		timeout = c.opt.BarrierTimeout
	}
	var last error
	dialFailed := false
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			if err := c.sleepBackoff(attempt); err != nil {
				return nil, err // context canceled mid-backoff
			}
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				var perm *serverError
				if errors.As(err, &perm) {
					// The session is gone (lease expired, force-done, …):
					// no retry can bring it back.
					c.lastErr = fmt.Errorf("client: resume %v: %w", req.Type, perm.err)
					return nil, c.lastErr
				}
				dialFailed = true
				last = err
				continue
			}
		}
		dialFailed = false
		if timeout > 0 {
			c.conn.SetDeadline(time.Now().Add(timeout))
		}
		if err := c.enc.EncodeRequest(&req); err != nil {
			c.drop()
			last = fmt.Errorf("client: send %v: %w", req.Type, err)
			continue
		}
		c.met.framesSent.Inc()
		resp := new(wire.Response)
		if err := c.dec.DecodeResponse(resp); err != nil {
			c.drop()
			last = fmt.Errorf("client: recv %v: %w", req.Type, err)
			continue
		}
		if timeout > 0 {
			c.conn.SetDeadline(time.Time{})
		}
		if resp.Round > c.round {
			c.round = resp.Round
		}
		if err := resp.Error(); err != nil {
			if errors.Is(err, wire.ErrNotLeader) {
				// The server we were talking to lost its leadership between
				// our requests: follow the redirect and retry there.
				c.adoptLeader(resp.Leader)
				c.drop()
				last = err
				continue
			}
			return nil, err
		}
		return resp, nil
	}
	if dialFailed {
		// The final attempt never reached a live server: best-effort
		// dead-endpoint classification (errors.Is(err, wire.ErrServerClosed)).
		c.lastErr = fmt.Errorf("client: %v: retries exhausted: %w (%w)", req.Type, last, wire.ErrServerClosed)
	} else {
		c.lastErr = fmt.Errorf("client: %v: retries exhausted: %w", req.Type, last)
	}
	return nil, c.lastErr
}

// sim.PublicUniverse implementation (from the Hello payload).

// M returns the number of objects.
func (c *Client) M() int { return c.m }

// Cost returns the public cost of object i.
func (c *Client) Cost(i int) float64 { return c.costs[i] }

// LocalTesting reports the goodness model.
func (c *Client) LocalTesting() bool { return c.localTesting }

// ProbeResult is what a probe reveals to the prober.
type ProbeResult struct {
	Value float64
	Good  bool // meaningful only with local testing
	Cost  float64
}

// Probe pays object obj's cost and reveals its value (plus goodness under
// local testing). Retried probes are deduplicated server-side: the cost is
// charged at most once per call.
func (c *Client) Probe(obj int) (ProbeResult, error) {
	resp, err := c.call(wire.Request{Type: wire.ReqProbe, Object: obj})
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{Value: resp.Value, Good: resp.Good, Cost: resp.Cost}, nil
}

// Post appends a report under the client's authenticated identity. Against
// a sharded server the post travels on the owning shard's lane, stamped
// with the client's running index so commit order follows posting order.
func (c *Client) Post(obj int, value float64, positive bool) error {
	if c.shards > 1 {
		if c.closed {
			return ErrClosed
		}
		if c.lastErr != nil {
			return c.lastErr
		}
		msgs := []wire.PostMsg{{Object: obj, Value: value, Positive: positive}}
		c.stampIndices(msgs)
		if err := c.scatterPosts(msgs); err != nil {
			return err
		}
		c.commitIndices(msgs)
		return nil
	}
	_, err := c.call(wire.Request{Type: wire.ReqPost, Object: obj, Value: value, Positive: positive})
	return err
}

// BatchPost is one report inside a PostBatch frame.
type BatchPost struct {
	Object   int
	Value    float64
	Positive bool
}

// PostBatch appends a whole round's reports in one frame (protocol v3) and,
// when endRound is true, also ends the caller's round in the same frame —
// collapsing O(posts) round-trips plus a barrier into a single request. The
// batch runs under one sequence number, so a retry after a lost response
// replays the recorded outcome and never re-applies any post. It returns
// the round number after the call (the new round when endRound is set).
// An empty batch with endRound is exactly a Barrier.
//
// Against a sharded server the batch is split by the shard map and the
// per-shard sub-batches are pipelined concurrently over the lane
// connections; the end-of-round then travels as a plain Barrier on the
// primary connection once every sub-batch is acknowledged.
func (c *Client) PostBatch(posts []BatchPost, endRound bool) (int, error) {
	msgs := make([]wire.PostMsg, len(posts))
	for i, p := range posts {
		msgs[i] = wire.PostMsg{Object: p.Object, Value: p.Value, Positive: p.Positive}
	}
	if c.shards > 1 {
		if c.closed {
			return 0, ErrClosed
		}
		if c.lastErr != nil {
			return 0, c.lastErr
		}
		if len(msgs) > 0 {
			c.stampIndices(msgs)
			if err := c.scatterPosts(msgs); err != nil {
				return 0, err
			}
			c.commitIndices(msgs)
		}
		if !endRound {
			return c.round, nil
		}
		return c.Barrier()
	}
	req := wire.Request{Type: wire.ReqPostBatch, Posts: msgs, EndRound: endRound}
	if c.epoch && endRound {
		// Epoch-stamped post batch (protocol v8): the posts and the lamport
		// stamp releasing their epoch travel in one non-blocking frame; the
		// seal is then observed by polling, never by blocking the server.
		target := c.round + 1
		req.Epoch = target
		if _, err := c.call(req); err != nil {
			return 0, err
		}
		return c.awaitEpoch(target)
	}
	resp, err := c.call(req)
	if err != nil {
		return 0, err
	}
	return resp.Round, nil
}

// Barrier ends the caller's round and blocks until the server commits it.
// It returns the new round number. Against an epoch-mode server the round
// barrier does not exist; the call becomes the equivalent epoch pacing
// loop — stamp the next epoch as finished, then poll until it seals — so
// callers keep per-round pacing without any server-side blocking.
func (c *Client) Barrier() (int, error) {
	if c.epoch {
		return c.awaitEpoch(c.round + 1)
	}
	resp, err := c.call(wire.Request{Type: wire.ReqBarrier})
	if err != nil {
		return 0, err
	}
	return resp.Round, nil
}

// awaitEpoch paces the caller up to target in epoch mode: each iteration
// sends one non-blocking epoch frame carrying the caller's lamport stamp
// ("finished submitting every epoch below target") and reads back the
// currently open epoch, sleeping Options.EpochPoll between asks until the
// server has sealed everything below target. Stamps are monotone
// server-side, so retried or reordered polls are harmless.
func (c *Client) awaitEpoch(target int) (int, error) {
	for {
		resp, err := c.call(wire.Request{Type: wire.ReqEpoch, Epoch: target})
		if err != nil {
			return 0, err
		}
		if resp.Round >= target {
			return resp.Round, nil
		}
		if err := c.pause(c.opt.EpochPoll); err != nil {
			return 0, err
		}
	}
}

// Done deregisters the player from future rounds.
func (c *Client) Done() error {
	_, err := c.call(wire.Request{Type: wire.ReqDone})
	return err
}

// billboard.Reader implementation (RPC-backed). Errors are not expressible
// through the Reader interface, so failures surface as zero values here,
// are recorded in Err, and re-surface as errors on the next explicit call;
// the distributed runner additionally checks Err each round.

// noteReadErr records a failure observed on the zero-value Reader path.
// Transport exhaustion is already latched by call; this catches
// application-level rejections, which call returns without recording — a
// rejected read silently answering "no votes" would otherwise steer the
// protocol with fabricated advice and never surface through Err.
func (c *Client) noteReadErr(err error) {
	if err != nil && c.lastErr == nil {
		c.lastErr = err
	}
}

// Round returns the last round number observed from the server.
func (c *Client) Round() int { return c.round }

// Votes returns player p's committed votes.
func (c *Client) Votes(player int) []billboard.Vote {
	resp, err := c.call(wire.Request{Type: wire.ReqVotes, OfPlayer: player})
	if err != nil {
		c.noteReadErr(err)
		return nil
	}
	votes := make([]billboard.Vote, len(resp.Votes))
	for i, v := range resp.Votes {
		votes[i] = billboard.Vote{Player: v.Player, Object: v.Object, Round: v.Round, Value: v.Value}
	}
	return votes
}

// HasVote reports whether player p has a committed vote.
func (c *Client) HasVote(player int) bool { return len(c.Votes(player)) > 0 }

// VoteCount returns object i's committed vote count.
func (c *Client) VoteCount(object int) int {
	resp, err := c.call(wire.Request{Type: wire.ReqVoteCount, Object: object})
	if err != nil {
		c.noteReadErr(err)
		return 0
	}
	return resp.Count
}

// NegativeCount returns object i's negative-report count.
func (c *Client) NegativeCount(object int) int {
	resp, err := c.call(wire.Request{Type: wire.ReqNegCount, Object: object})
	if err != nil {
		c.noteReadErr(err)
		return 0
	}
	return resp.Count
}

// VotedObjects returns the objects currently holding votes.
func (c *Client) VotedObjects() []int {
	resp, err := c.call(wire.Request{Type: wire.ReqVotedObjects})
	if err != nil {
		c.noteReadErr(err)
		return nil
	}
	return resp.Objects
}

// NumVotedObjects returns the number of objects holding votes.
func (c *Client) NumVotedObjects() int { return len(c.VotedObjects()) }

// CountVotesInWindow counts vote events per object in [fromRound, toRound).
func (c *Client) CountVotesInWindow(fromRound, toRound int) map[int]int {
	resp, err := c.call(wire.Request{Type: wire.ReqWindow, From: fromRound, To: toRound})
	if err != nil {
		c.noteReadErr(err)
		return map[int]int{}
	}
	if resp.Counts == nil {
		return map[int]int{}
	}
	return resp.Counts
}

// CountVotesInLast counts vote events per object over the most recent
// `last` closed rounds (protocol v8 sliding window). The server anchors the
// window at its own current round — which an epoch-mode client cannot pin
// in advance, since epochs seal on other players' stamps — and that anchor
// round is returned alongside the counts: the answer covers
// [round-last, round).
func (c *Client) CountVotesInLast(last int) (map[int]int, int) {
	resp, err := c.call(wire.Request{Type: wire.ReqWindow, Last: last})
	if err != nil {
		c.noteReadErr(err)
		return map[int]int{}, c.round
	}
	if resp.Counts == nil {
		return map[int]int{}, resp.Round
	}
	return resp.Counts, resp.Round
}
