package client

// Backoff must be total: DialOptions normalizes its knobs, but a Client
// built around a zero or hand-rolled Options (tests, embedding) reaches
// backoff() with whatever the caller left there. Degenerate configs —
// zero, negative, or overflow-inducing values — must yield a sane wait
// (zero for "no backoff configured"), never a panic in Uint64n(0).

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestBackoffDegenerateConfigs(t *testing.T) {
	cases := []struct {
		name      string
		base, max time.Duration
		attempt   int
		// wantZero asserts an immediate retry; otherwise the wait must be
		// in (0, wantAtMost].
		wantZero   bool
		wantAtMost time.Duration
	}{
		{name: "zero options", base: 0, max: 0, attempt: 1, wantZero: true},
		{name: "zero options late attempt", base: 0, max: 0, attempt: 50, wantZero: true},
		{name: "negative base", base: -time.Second, max: 0, attempt: 3, wantZero: true},
		{name: "negative base and max", base: -time.Second, max: -time.Minute, attempt: 3, wantZero: true},
		{name: "zero base positive max", base: 0, max: time.Second, attempt: 4, wantZero: true},
		// A zero cap is "no backoff configured": the clamp drives any step
		// to zero rather than letting an uncapped exponential run away.
		{name: "positive base zero max", base: time.Millisecond, max: 0, attempt: 1, wantZero: true},
		{name: "huge base zero max", base: math.MaxInt64 / 2, max: 0, attempt: 80, wantZero: true},
		// Doubling past the cap — including past the overflow point — must
		// clamp to the cap, not wrap negative.
		{name: "overflow clamps to max", base: math.MaxInt64 / 2, max: time.Second, attempt: 80,
			wantAtMost: time.Second},
		{name: "normal first attempt", base: 4 * time.Millisecond, max: time.Second, attempt: 1,
			wantAtMost: 4 * time.Millisecond},
		{name: "normal growth", base: 4 * time.Millisecond, max: time.Second, attempt: 3,
			wantAtMost: 16 * time.Millisecond},
		{name: "normal capped", base: 4 * time.Millisecond, max: 10 * time.Millisecond, attempt: 10,
			wantAtMost: 10 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Client{
				opt:    Options{BackoffBase: tc.base, BackoffMax: tc.max},
				jitter: rng.New(1).Split(0),
			}
			// Several draws: the jitter must stay in range for every sample,
			// and no draw may panic.
			for i := 0; i < 32; i++ {
				d := c.backoff(tc.attempt)
				if tc.wantZero {
					if d != 0 {
						t.Fatalf("backoff(%d) = %v, want 0", tc.attempt, d)
					}
					continue
				}
				if d <= 0 || d > tc.wantAtMost {
					t.Fatalf("backoff(%d) = %v, want in (0, %v]", tc.attempt, d, tc.wantAtMost)
				}
			}
		})
	}
}

// TestBackoffOverflowTerminates pins the loop guard: a huge attempt count
// with an uncapped base must return promptly (the doubling loop exits on
// overflow instead of spinning on a step stuck at zero or negative).
func TestBackoffOverflowTerminates(t *testing.T) {
	c := &Client{
		opt:    Options{BackoffBase: time.Nanosecond, BackoffMax: math.MaxInt64},
		jitter: rng.New(2).Split(0),
	}
	done := make(chan time.Duration, 1)
	go func() { done <- c.backoff(1 << 30) }()
	select {
	case d := <-done:
		if d <= 0 {
			t.Fatalf("backoff overflowed to %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backoff did not terminate")
	}
}
