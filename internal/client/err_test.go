package client_test

// Sticky-error surface: the billboard.Reader methods cannot return errors,
// so the client records unrecovered transport failures and reports them via
// Err() on the next explicit check (internal/dist checks once per round).

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

func TestStickyErrSurfacesReaderFailures(t *testing.T) {
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"a"}, Alpha: 1, Beta: u.Beta(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.DialOptions(addr, 0, "a", client.Options{
		Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Err(); err != nil {
		t.Fatalf("fresh client has sticky error: %v", err)
	}
	if got := c.VoteCount(3); got != 0 {
		t.Fatalf("vote count = %d", got)
	}

	// Kill the server for good: reads now silently degrade to zero values —
	// the old failure mode — but Err() must expose what happened.
	srv.Close()
	if got := c.Votes(0); got != nil {
		t.Fatalf("votes after server death = %v, want nil", got)
	}
	if err := c.Err(); err == nil {
		t.Fatal("reader failure left no sticky error")
	}

	// Once sticky, every later call short-circuits with the same error.
	if _, err := c.Probe(0); err == nil {
		t.Fatal("probe succeeded after sticky error")
	}
	first := c.Err()
	_ = c.VoteCount(1)
	if c.Err() != first {
		t.Fatalf("sticky error changed: %v → %v", first, c.Err())
	}
}

func TestAppErrorsAreNotSticky(t *testing.T) {
	c0, _ := startPair(t)
	// An application-level rejection (out-of-range probe) is the caller's
	// bug, not a transport failure: it must not poison the session.
	if _, err := c0.Probe(-1); err == nil {
		t.Fatal("out-of-range probe accepted")
	}
	if err := c0.Err(); err != nil {
		t.Fatalf("app error became sticky: %v", err)
	}
	if _, err := c0.Probe(0); err != nil {
		t.Fatalf("session poisoned by app error: %v", err)
	}
}
