package client_test

import (
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

func startPair(t *testing.T) (*client.Client, *client.Client) {
	t.Helper()
	u, err := object.NewPlanted(object.Planted{M: 16, Good: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Universe: u, Tokens: []string{"a", "b"}, Alpha: 1, Beta: u.Beta(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c0, err := client.Dial(addr, 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c0.Close() })
	c1, err := client.Dial(addr, 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Close() })
	return c0, c1
}

func barrierBoth(t *testing.T, a, b *client.Client) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(2)
	for _, c := range []*client.Client{a, b} {
		go func(c *client.Client) { defer wg.Done(); _, _ = c.Barrier() }(c)
	}
	wg.Wait()
}

func TestCachedServesStaleWithinRoundFreshAfterInvalidate(t *testing.T) {
	c0, c1 := startPair(t)
	cached := client.NewCached(c0)

	bad := 3 // object 3 might be good in this universe; find a bad one
	for i := 0; i < c0.M(); i++ {
		bad = i
		break
	}
	if err := c1.Post(bad, 1, true); err != nil {
		t.Fatal(err)
	}
	// Prime the cache pre-commit.
	if got := cached.VoteCount(bad); got != 0 {
		t.Fatalf("pre-commit count %d", got)
	}
	barrierBoth(t, c0, c1)
	// Without invalidation the cache is intentionally stale.
	if got := cached.VoteCount(bad); got != 0 {
		t.Fatalf("cache refreshed without Invalidate: %d", got)
	}
	cached.Invalidate()
	if got := cached.VoteCount(bad); got != 1 {
		t.Fatalf("post-invalidate count %d, want 1", got)
	}
	if !cached.HasVote(1) || cached.NumVotedObjects() != 1 {
		t.Fatal("cached vote views wrong after invalidate")
	}
	if got := cached.CountVotesInWindow(0, 1)[bad]; got != 1 {
		t.Fatalf("cached window count %d", got)
	}
	if cached.NegativeCount(bad) != 0 {
		t.Fatal("spurious negative count")
	}
	if cached.Client() != c0 {
		t.Fatal("Client accessor broken")
	}
}

func TestCachedRoundTracksClient(t *testing.T) {
	c0, c1 := startPair(t)
	cached := client.NewCached(c0)
	if cached.Round() != 0 {
		t.Fatalf("round = %d", cached.Round())
	}
	barrierBoth(t, c0, c1)
	if cached.Round() != 1 {
		t.Fatalf("round after barrier = %d", cached.Round())
	}
}

func TestDialFailures(t *testing.T) {
	// Nothing listening.
	if _, err := client.Dial("127.0.0.1:1", 0, "t"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestCallsAfterServerClose(t *testing.T) {
	c0, _ := startPair(t)
	// Closing the server mid-session: subsequent reads degrade to zero
	// values (Reader interface) and explicit calls error.
	// The server is closed by the test cleanup at the END, so instead close
	// the client side and verify explicit calls fail fast.
	if err := c0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c0.Post(0, 1, true); err == nil {
		t.Fatal("post on closed client succeeded")
	}
	if got := c0.Votes(0); got != nil {
		t.Fatalf("votes on closed client = %v", got)
	}
	if got := c0.VoteCount(0); got != 0 {
		t.Fatalf("vote count on closed client = %d", got)
	}
	if got := c0.VotedObjects(); got != nil {
		t.Fatalf("voted objects on closed client = %v", got)
	}
	if got := c0.CountVotesInWindow(0, 1); len(got) != 0 {
		t.Fatalf("window on closed client = %v", got)
	}
	if _, err := c0.Barrier(); err == nil {
		t.Fatal("barrier on closed client succeeded")
	}
}
