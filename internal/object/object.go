// Package object models the object universe of the paper: m objects, each
// with an intrinsic unknown value and a known cost. Objects are partitioned
// into good (high value) and bad (low value) ones.
//
// Two goodness models are supported, mirroring §2.2 of the paper:
//
//   - Local testing: a player can tell whether an object is good immediately
//     after probing it (value meets a known threshold).
//   - No local testing: goodness is defined only by the parameter β — an
//     object is good iff it is among the top βm objects by value.
package object

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Universe is an immutable collection of objects. Values are hidden from
// players until probed; costs are public. Construct with NewUniverse or a
// generator; the zero value is unusable.
type Universe struct {
	values       []float64
	costs        []float64
	good         []bool
	goodCount    int
	localTesting bool
	threshold    float64 // goodness threshold when localTesting
}

// Config describes a universe to build explicitly. Generators in this
// package provide the common cases.
type Config struct {
	// Values holds the intrinsic object values. Required.
	Values []float64
	// Costs holds the known object costs. If nil, unit costs are used.
	Costs []float64
	// LocalTesting selects the goodness model. When true, an object is good
	// iff its value >= Threshold and players can test goodness locally.
	LocalTesting bool
	// Threshold is the goodness threshold for the local-testing model.
	Threshold float64
	// Beta is the good fraction for the no-local-testing model: the top
	// Beta*m objects by value are good. Ignored when LocalTesting is set.
	Beta float64
}

// NewUniverse validates cfg and builds a Universe.
func NewUniverse(cfg Config) (*Universe, error) {
	m := len(cfg.Values)
	if m == 0 {
		return nil, fmt.Errorf("object: universe needs at least one object")
	}
	costs := cfg.Costs
	if costs == nil {
		costs = make([]float64, m)
		for i := range costs {
			costs[i] = 1
		}
	}
	if len(costs) != m {
		return nil, fmt.Errorf("object: %d costs for %d values", len(costs), m)
	}
	for i, c := range costs {
		if c < 0 {
			return nil, fmt.Errorf("object: negative cost %v at index %d", c, i)
		}
	}
	for i, v := range cfg.Values {
		if v < 0 {
			return nil, fmt.Errorf("object: negative value %v at index %d", v, i)
		}
	}
	u := &Universe{
		values:       append([]float64(nil), cfg.Values...),
		costs:        append([]float64(nil), costs...),
		localTesting: cfg.LocalTesting,
		threshold:    cfg.Threshold,
	}
	u.good = make([]bool, m)
	if cfg.LocalTesting {
		for i, v := range u.values {
			u.good[i] = v >= cfg.Threshold
		}
	} else {
		if cfg.Beta <= 0 || cfg.Beta > 1 {
			return nil, fmt.Errorf("object: beta %v outside (0, 1]", cfg.Beta)
		}
		k := int(cfg.Beta * float64(m))
		if k < 1 {
			k = 1
		}
		// The top-k objects by value are good; ties broken by index for
		// determinism.
		idx := make([]int, m)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if u.values[idx[a]] != u.values[idx[b]] {
				return u.values[idx[a]] > u.values[idx[b]]
			}
			return idx[a] < idx[b]
		})
		for _, i := range idx[:k] {
			u.good[i] = true
		}
	}
	for _, g := range u.good {
		if g {
			u.goodCount++
		}
	}
	if u.goodCount == 0 {
		return nil, fmt.Errorf("object: universe has no good object")
	}
	return u, nil
}

// M returns the number of objects.
func (u *Universe) M() int { return len(u.values) }

// Value returns the (normally hidden) value of object i. The simulation
// engine calls this when a player probes i.
func (u *Universe) Value(i int) float64 { return u.values[i] }

// Cost returns the publicly known cost of object i.
func (u *Universe) Cost(i int) float64 { return u.costs[i] }

// IsGood reports whether object i is good. With local testing a player
// learns this bit by probing; without, only the evaluation harness may
// consult it.
func (u *Universe) IsGood(i int) bool { return u.good[i] }

// LocalTesting reports whether goodness is locally testable.
func (u *Universe) LocalTesting() bool { return u.localTesting }

// GoodCount returns the number of good objects.
func (u *Universe) GoodCount() int { return u.goodCount }

// Beta returns the realized good fraction goodCount/m.
func (u *Universe) Beta() float64 {
	return float64(u.goodCount) / float64(len(u.values))
}

// GoodObjects returns the indices of all good objects in increasing order.
func (u *Universe) GoodObjects() []int {
	out := make([]int, 0, u.goodCount)
	for i, g := range u.good {
		if g {
			out = append(out, i)
		}
	}
	return out
}

// CheapestGoodCost returns the minimum cost over good objects.
func (u *Universe) CheapestGoodCost() float64 {
	best := -1.0
	for i, g := range u.good {
		if g && (best < 0 || u.costs[i] < best) {
			best = u.costs[i]
		}
	}
	return best
}

// Churn replaces the good set of a local-testing universe: objects in
// newGood receive value threshold+1, all others value 0. This models the
// "changing interests" setting that motivated the authors' prior work [1]
// (experiment X6 studies how the one-vote rule behaves under it). It
// returns an error for no-local-testing universes, an empty newGood, a
// non-positive threshold, or out-of-range objects.
func (u *Universe) Churn(newGood []int) error {
	if !u.localTesting {
		return fmt.Errorf("object: Churn requires a local-testing universe")
	}
	if u.threshold <= 0 {
		return fmt.Errorf("object: Churn requires a positive goodness threshold")
	}
	if len(newGood) == 0 {
		return fmt.Errorf("object: Churn needs at least one good object")
	}
	for _, obj := range newGood {
		if obj < 0 || obj >= len(u.values) {
			return fmt.Errorf("object: Churn object %d out of range", obj)
		}
	}
	for i := range u.values {
		u.values[i] = 0
		u.good[i] = false
	}
	u.goodCount = 0
	for _, obj := range newGood {
		if !u.good[obj] {
			u.values[obj] = u.threshold + 1
			u.good[obj] = true
			u.goodCount++
		}
	}
	return nil
}

// Restrict returns a view of the universe containing only the objects in
// keep (by original index), along with the mapping from new index to old.
// The view shares no mutable state with u. Goodness of kept objects is
// preserved even if the view would re-rank differently; this is what the
// cost-class search of §5.2 needs. If no kept object is good, the returned
// universe has goodCount 0 and IsGood is false everywhere — searches on it
// simply never succeed, which models "this cost class has no good object".
func (u *Universe) Restrict(keep []int) (*Universe, []int) {
	v := &Universe{
		values:       make([]float64, len(keep)),
		costs:        make([]float64, len(keep)),
		good:         make([]bool, len(keep)),
		localTesting: u.localTesting,
		threshold:    u.threshold,
	}
	mapping := append([]int(nil), keep...)
	for newIdx, oldIdx := range keep {
		v.values[newIdx] = u.values[oldIdx]
		v.costs[newIdx] = u.costs[oldIdx]
		v.good[newIdx] = u.good[oldIdx]
		if v.good[newIdx] {
			v.goodCount++
		}
	}
	return v, mapping
}

// Planted describes the standard synthetic workload: good objects have
// value GoodValue, bad objects have value BadValue, with optional
// additive noise that never crosses the threshold midway between them.
type Planted struct {
	M         int     // number of objects (required, > 0)
	Good      int     // number of good objects (required, in [1, M])
	GoodValue float64 // default 1
	BadValue  float64 // default 0
	Noise     float64 // uniform value noise amplitude, < (GoodValue-BadValue)/2
	Costs     []float64
}

// NewPlanted builds a local-testing universe with Good good objects placed
// uniformly at random among M objects.
func NewPlanted(p Planted, src *rng.Source) (*Universe, error) {
	if p.M <= 0 {
		return nil, fmt.Errorf("object: planted universe needs M > 0, got %d", p.M)
	}
	if p.Good < 1 || p.Good > p.M {
		return nil, fmt.Errorf("object: planted good count %d outside [1, %d]", p.Good, p.M)
	}
	goodValue, badValue := p.GoodValue, p.BadValue
	if goodValue == 0 && badValue == 0 {
		goodValue = 1
	}
	if goodValue <= badValue {
		return nil, fmt.Errorf("object: GoodValue %v <= BadValue %v", goodValue, badValue)
	}
	if p.Noise < 0 || p.Noise >= (goodValue-badValue)/2 {
		if p.Noise != 0 {
			return nil, fmt.Errorf("object: noise %v must be in [0, %v)", p.Noise, (goodValue-badValue)/2)
		}
	}
	values := make([]float64, p.M)
	for i := range values {
		values[i] = badValue
		if p.Noise > 0 {
			values[i] += p.Noise * src.Float64()
		}
	}
	for _, i := range src.Sample(p.M, p.Good) {
		values[i] = goodValue
		if p.Noise > 0 {
			values[i] += p.Noise * src.Float64()
		}
	}
	return NewUniverse(Config{
		Values:       values,
		Costs:        p.Costs,
		LocalTesting: true,
		Threshold:    (goodValue + badValue) / 2,
	})
}

// NewTopBeta builds a no-local-testing universe: M objects with values
// drawn i.i.d. uniform in [0, 1); the top beta*M are good by definition.
func NewTopBeta(m int, beta float64, src *rng.Source) (*Universe, error) {
	if m <= 0 {
		return nil, fmt.Errorf("object: NewTopBeta needs m > 0, got %d", m)
	}
	values := make([]float64, m)
	for i := range values {
		values[i] = src.Float64()
	}
	return NewUniverse(Config{Values: values, Beta: beta})
}

// NewZipfTopBeta builds a no-local-testing universe with a heavy-tailed
// value distribution: object values follow a Zipf(exponent) profile over a
// random quality ranking (plus a tiny tie-breaking jitter), modeling
// recommendation catalogs where a few items are far better than the rest.
// The top beta*M objects by value are good.
func NewZipfTopBeta(m int, beta, exponent float64, src *rng.Source) (*Universe, error) {
	if m <= 0 {
		return nil, fmt.Errorf("object: NewZipfTopBeta needs m > 0, got %d", m)
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("object: NewZipfTopBeta needs exponent > 0, got %v", exponent)
	}
	ranking := src.Perm(m)
	values := make([]float64, m)
	for rank, obj := range ranking {
		base := 1 / pow(float64(rank+1), exponent)
		// Jitter far below the smallest rank gap keeps the ranking strict
		// without reordering it.
		values[obj] = base + src.Float64()*1e-12
	}
	return NewUniverse(Config{Values: values, Beta: beta})
}

// pow is a tiny local wrapper to keep math out of the hot path imports.
func pow(x, y float64) float64 {
	return math.Pow(x, y)
}
