package object

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// UnitCosts returns m costs of 1, the unit cost model of §4.
func UnitCosts(m int) []float64 {
	costs := make([]float64, m)
	for i := range costs {
		costs[i] = 1
	}
	return costs
}

// ParetoCosts returns m costs drawn from a Pareto(shape) distribution with
// minimum 1, the heavy-tailed price model used for the §5.2 experiments.
func ParetoCosts(m int, shape float64, src *rng.Source) []float64 {
	costs := make([]float64, m)
	for i := range costs {
		costs[i] = src.Pareto(1, shape)
	}
	return costs
}

// TwoTierCosts returns m costs where a fraction cheapFrac cost 1 and the
// rest cost expensive. Used to plant universes where the cheapest good
// object is far below the typical price.
func TwoTierCosts(m int, cheapFrac, expensive float64, src *rng.Source) []float64 {
	costs := make([]float64, m)
	for i := range costs {
		if src.Bernoulli(cheapFrac) {
			costs[i] = 1
		} else {
			costs[i] = expensive
		}
	}
	return costs
}

// CostClass holds one class of the §5.2 cost aggregation: all objects whose
// cost lies in [2^Index, 2^(Index+1)).
type CostClass struct {
	Index   int   // class exponent i
	Objects []int // object indices in increasing order
}

// Lower returns the inclusive lower cost bound 2^Index of the class.
func (c CostClass) Lower() float64 { return math.Pow(2, float64(c.Index)) }

// Upper returns the exclusive upper cost bound 2^(Index+1) of the class.
func (c CostClass) Upper() float64 { return math.Pow(2, float64(c.Index+1)) }

// CostClasses partitions the universe's objects into cost classes
// [2^i, 2^(i+1)), i >= 0, in increasing class order, per §5.2 of the paper.
// All costs must be >= 1 (the paper assumes the minimal cost is 1 w.l.o.g.).
// Empty classes are omitted.
func CostClasses(u *Universe) ([]CostClass, error) {
	byIndex := make(map[int][]int)
	maxIdx := 0
	for i := 0; i < u.M(); i++ {
		c := u.Cost(i)
		if c < 1 {
			return nil, fmt.Errorf("object: cost class model requires costs >= 1, object %d costs %v", i, c)
		}
		idx := int(math.Floor(math.Log2(c)))
		// Guard against floating point: ensure c is inside [2^idx, 2^(idx+1)).
		for c < math.Pow(2, float64(idx)) {
			idx--
		}
		for c >= math.Pow(2, float64(idx+1)) {
			idx++
		}
		byIndex[idx] = append(byIndex[idx], i)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	out := make([]CostClass, 0, len(byIndex))
	for i := 0; i <= maxIdx; i++ {
		if objs, ok := byIndex[i]; ok {
			out = append(out, CostClass{Index: i, Objects: objs})
		}
	}
	return out, nil
}
