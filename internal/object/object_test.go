package object

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewUniverseLocalTesting(t *testing.T) {
	u, err := NewUniverse(Config{
		Values:       []float64{0, 1, 0.4, 0.6},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.M() != 4 {
		t.Fatalf("M = %d", u.M())
	}
	wantGood := []bool{false, true, false, true}
	for i, want := range wantGood {
		if u.IsGood(i) != want {
			t.Fatalf("IsGood(%d) = %v, want %v", i, u.IsGood(i), want)
		}
	}
	if u.GoodCount() != 2 || u.Beta() != 0.5 {
		t.Fatalf("GoodCount=%d Beta=%v", u.GoodCount(), u.Beta())
	}
	if !u.LocalTesting() {
		t.Fatal("LocalTesting should be true")
	}
	got := u.GoodObjects()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("GoodObjects = %v", got)
	}
}

func TestNewUniverseTopBeta(t *testing.T) {
	u, err := NewUniverse(Config{
		Values: []float64{0.1, 0.9, 0.5, 0.7},
		Beta:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Top 2 by value: indices 1 (0.9) and 3 (0.7).
	if !u.IsGood(1) || !u.IsGood(3) || u.IsGood(0) || u.IsGood(2) {
		t.Fatalf("top-beta goodness wrong: %v %v %v %v",
			u.IsGood(0), u.IsGood(1), u.IsGood(2), u.IsGood(3))
	}
	if u.LocalTesting() {
		t.Fatal("LocalTesting should be false")
	}
}

func TestTopBetaAtLeastOneGood(t *testing.T) {
	// beta*m < 1 still yields one good object (beta = 1/m effectively).
	u, err := NewUniverse(Config{
		Values: []float64{0.3, 0.1, 0.2},
		Beta:   0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.GoodCount() != 1 || !u.IsGood(0) {
		t.Fatalf("want exactly object 0 good, got count %d", u.GoodCount())
	}
}

func TestTopBetaTieBreaking(t *testing.T) {
	u, err := NewUniverse(Config{
		Values: []float64{0.5, 0.5, 0.5, 0.5},
		Beta:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ties break by index: objects 0 and 1 are good.
	if !u.IsGood(0) || !u.IsGood(1) || u.IsGood(2) || u.IsGood(3) {
		t.Fatal("tie-breaking by index violated")
	}
}

func TestNewUniverseErrors(t *testing.T) {
	cases := []Config{
		{}, // no values
		{Values: []float64{1}, Costs: []float64{1, 2}},              // cost length
		{Values: []float64{1}, Costs: []float64{-1}},                // negative cost
		{Values: []float64{-1}, Beta: 0.5},                          // negative value
		{Values: []float64{1, 2}, Beta: 0},                          // bad beta
		{Values: []float64{1, 2}, Beta: 1.5},                        // bad beta
		{Values: []float64{0, 0}, LocalTesting: true, Threshold: 1}, // no good
	}
	for i, cfg := range cases {
		if _, err := NewUniverse(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestDefaultUnitCosts(t *testing.T) {
	u, err := NewUniverse(Config{Values: []float64{1, 2}, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cost(0) != 1 || u.Cost(1) != 1 {
		t.Fatal("default costs should be unit")
	}
}

func TestCheapestGoodCost(t *testing.T) {
	u, err := NewUniverse(Config{
		Values:       []float64{1, 1, 0},
		Costs:        []float64{5, 3, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := u.CheapestGoodCost(); c != 3 {
		t.Fatalf("CheapestGoodCost = %v", c)
	}
}

func TestRestrict(t *testing.T) {
	u, err := NewUniverse(Config{
		Values:       []float64{1, 0, 1, 0},
		Costs:        []float64{1, 2, 3, 4},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, mapping := u.Restrict([]int{2, 3})
	if v.M() != 2 {
		t.Fatalf("restricted M = %d", v.M())
	}
	if !v.IsGood(0) || v.IsGood(1) {
		t.Fatal("restricted goodness wrong")
	}
	if v.Cost(0) != 3 || v.Cost(1) != 4 {
		t.Fatal("restricted costs wrong")
	}
	if mapping[0] != 2 || mapping[1] != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	// A restriction with no good object is allowed (class without good).
	w, _ := u.Restrict([]int{1, 3})
	if w.GoodCount() != 0 {
		t.Fatalf("want 0 good in bad-only restriction, got %d", w.GoodCount())
	}
}

func TestNewPlanted(t *testing.T) {
	src := rng.New(1)
	u, err := NewPlanted(Planted{M: 100, Good: 7}, src)
	if err != nil {
		t.Fatal(err)
	}
	if u.GoodCount() != 7 {
		t.Fatalf("GoodCount = %d", u.GoodCount())
	}
	if !u.LocalTesting() {
		t.Fatal("planted universe should be local-testing")
	}
	for _, i := range u.GoodObjects() {
		if u.Value(i) < 0.5 {
			t.Fatalf("good object %d has value %v below threshold", i, u.Value(i))
		}
	}
}

func TestNewPlantedNoise(t *testing.T) {
	src := rng.New(2)
	u, err := NewPlanted(Planted{M: 200, Good: 10, Noise: 0.4}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Noise must never flip goodness relative to the planted set.
	if u.GoodCount() != 10 {
		t.Fatalf("noise changed good count to %d", u.GoodCount())
	}
}

func TestNewPlantedErrors(t *testing.T) {
	src := rng.New(3)
	cases := []Planted{
		{M: 0, Good: 1},
		{M: 10, Good: 0},
		{M: 10, Good: 11},
		{M: 10, Good: 1, GoodValue: 1, BadValue: 2},
		{M: 10, Good: 1, Noise: 0.6}, // noise >= (1-0)/2
	}
	for i, p := range cases {
		if _, err := NewPlanted(p, src); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestNewPlantedGoodPlacementUniform(t *testing.T) {
	src := rng.New(4)
	const m, reps = 20, 4000
	counts := make([]int, m)
	for r := 0; r < reps; r++ {
		u, err := NewPlanted(Planted{M: m, Good: 1}, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[u.GoodObjects()[0]]++
	}
	expected := float64(reps) / m
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("object %d planted %d times, expected ~%.0f", i, c, expected)
		}
	}
}

func TestNewTopBeta(t *testing.T) {
	src := rng.New(5)
	u, err := NewTopBeta(1000, 0.05, src)
	if err != nil {
		t.Fatal(err)
	}
	if u.GoodCount() != 50 {
		t.Fatalf("GoodCount = %d, want 50", u.GoodCount())
	}
	// Every good object must have value >= every bad object's value.
	minGood := math.Inf(1)
	maxBad := math.Inf(-1)
	for i := 0; i < u.M(); i++ {
		if u.IsGood(i) {
			minGood = math.Min(minGood, u.Value(i))
		} else {
			maxBad = math.Max(maxBad, u.Value(i))
		}
	}
	if minGood < maxBad {
		t.Fatalf("good/bad value overlap: minGood=%v maxBad=%v", minGood, maxBad)
	}
}

func TestUnitCosts(t *testing.T) {
	costs := UnitCosts(5)
	for _, c := range costs {
		if c != 1 {
			t.Fatalf("unit cost %v", c)
		}
	}
}

func TestParetoCostsMinimum(t *testing.T) {
	src := rng.New(6)
	for _, c := range ParetoCosts(1000, 1.2, src) {
		if c < 1 {
			t.Fatalf("Pareto cost below 1: %v", c)
		}
	}
}

func TestTwoTierCosts(t *testing.T) {
	src := rng.New(7)
	costs := TwoTierCosts(1000, 0.3, 64, src)
	cheap := 0
	for _, c := range costs {
		switch c {
		case 1:
			cheap++
		case 64:
		default:
			t.Fatalf("unexpected cost %v", c)
		}
	}
	if cheap < 200 || cheap > 400 {
		t.Fatalf("cheap count %d far from 300", cheap)
	}
}

func TestCostClassesPartition(t *testing.T) {
	u, err := NewUniverse(Config{
		Values:       []float64{1, 1, 1, 1, 1},
		Costs:        []float64{1, 1.5, 2, 7.9, 8},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := CostClasses(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 4 {
		t.Fatalf("got %d classes: %+v", len(classes), classes)
	}
	// Class 0 = [1,2): objects 0,1. Class 1 = [2,4): object 2.
	// Class 2 = [4,8): object 3 (7.9). Class 3 = [8,16): object 4.
	if classes[0].Index != 0 || len(classes[0].Objects) != 2 {
		t.Fatalf("class0 = %+v", classes[0])
	}
	if classes[1].Index != 1 || len(classes[1].Objects) != 1 || classes[1].Objects[0] != 2 {
		t.Fatalf("class1 = %+v", classes[1])
	}
	if classes[2].Index != 2 || len(classes[2].Objects) != 1 || classes[2].Objects[0] != 3 {
		t.Fatalf("class2 = %+v", classes[2])
	}
}

func TestCostClassesObject4(t *testing.T) {
	u, err := NewUniverse(Config{
		Values:       []float64{1, 1},
		Costs:        []float64{8, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	classes, err := CostClasses(u)
	if err != nil {
		t.Fatal(err)
	}
	last := classes[len(classes)-1]
	if last.Index != 3 || last.Objects[0] != 0 {
		t.Fatalf("cost 8 should land in class 3 [8,16): %+v", last)
	}
	if last.Lower() != 8 || last.Upper() != 16 {
		t.Fatalf("bounds = [%v, %v)", last.Lower(), last.Upper())
	}
}

func TestCostClassesRejectsSubUnit(t *testing.T) {
	u, err := NewUniverse(Config{
		Values:       []float64{1, 1},
		Costs:        []float64{0.5, 1},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CostClasses(u); err == nil {
		t.Fatal("expected error for cost < 1")
	}
}

func TestCostClassesProperty(t *testing.T) {
	src := rng.New(8)
	f := func(seed uint16) bool {
		local := src.Split(uint64(seed))
		m := local.Intn(50) + 1
		costs := make([]float64, m)
		for i := range costs {
			costs[i] = 1 + 100*local.Float64()
		}
		values := make([]float64, m)
		values[local.Intn(m)] = 1
		u, err := NewUniverse(Config{Values: values, Costs: costs, LocalTesting: true, Threshold: 0.5})
		if err != nil {
			return false
		}
		classes, err := CostClasses(u)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, cl := range classes {
			for _, obj := range cl.Objects {
				if seen[obj] {
					return false // object in two classes
				}
				seen[obj] = true
				c := u.Cost(obj)
				if c < cl.Lower() || c >= cl.Upper() {
					return false // outside class bounds
				}
			}
		}
		return len(seen) == m // every object classified
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewZipfTopBeta(t *testing.T) {
	src := rng.New(21)
	u, err := NewZipfTopBeta(500, 0.02, 1.1, src)
	if err != nil {
		t.Fatal(err)
	}
	if u.GoodCount() != 10 {
		t.Fatalf("GoodCount = %d, want 10", u.GoodCount())
	}
	if u.LocalTesting() {
		t.Fatal("Zipf universe should be no-local-testing")
	}
	// The value distribution must be heavy-tailed: the best object should
	// dominate the median by a large factor.
	best := 0.0
	for i := 0; i < u.M(); i++ {
		if v := u.Value(i); v > best {
			best = v
		}
	}
	if best < 0.99 {
		t.Fatalf("best value %v, want ~1 (rank 1)", best)
	}
	if _, err := NewZipfTopBeta(0, 0.1, 1, src); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewZipfTopBeta(10, 0.1, 0, src); err == nil {
		t.Fatal("exponent 0 accepted")
	}
}

func TestChurnMovesGoodSet(t *testing.T) {
	src := rng.New(30)
	u, err := NewPlanted(Planted{M: 20, Good: 2}, src)
	if err != nil {
		t.Fatal(err)
	}
	oldGood := u.GoodObjects()
	newGood := []int{}
	for i := 0; len(newGood) < 2; i++ {
		if !u.IsGood(i) {
			newGood = append(newGood, i)
		}
	}
	if err := u.Churn(newGood); err != nil {
		t.Fatal(err)
	}
	if u.GoodCount() != 2 {
		t.Fatalf("GoodCount = %d", u.GoodCount())
	}
	for _, obj := range newGood {
		if !u.IsGood(obj) {
			t.Fatalf("new good %d not good", obj)
		}
	}
	for _, obj := range oldGood {
		if u.IsGood(obj) {
			t.Fatalf("old good %d still good", obj)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	src := rng.New(31)
	u, err := NewPlanted(Planted{M: 10, Good: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Churn(nil); err == nil {
		t.Fatal("empty churn accepted")
	}
	if err := u.Churn([]int{99}); err == nil {
		t.Fatal("out-of-range churn accepted")
	}
	nlt, err := NewTopBeta(10, 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := nlt.Churn([]int{0}); err == nil {
		t.Fatal("no-local-testing churn accepted")
	}
	// Duplicate entries are deduplicated, not double-counted.
	if err := u.Churn([]int{3, 3}); err != nil {
		t.Fatal(err)
	}
	if u.GoodCount() != 1 {
		t.Fatalf("duplicates double-counted: %d", u.GoodCount())
	}
}
