package main

import (
	"strings"
	"testing"
)

func TestSweepAlpha(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-param", "alpha", "-values", "0.5,1",
		"-n", "64", "-reps", "2", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + 2 values
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "param,value,mean_probes") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "alpha,0.5,") {
		t.Fatalf("bad row: %s", lines[1])
	}
}

func TestSweepN(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-param", "n", "-values", "32,64", "-reps", "2", "-alpha", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n,32,") || !strings.Contains(out.String(), "n,64,") {
		t.Fatalf("missing rows:\n%s", out.String())
	}
}

func TestSweepErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-param", "n"}, &out); err == nil {
		t.Fatal("missing -values accepted")
	}
	if err := run([]string{"-param", "bogus", "-values", "1"}, &out); err == nil {
		t.Fatal("bad param accepted")
	}
	if err := run([]string{"-param", "n", "-values", "abc"}, &out); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if err := run([]string{"-param", "alpha", "-values", "xyz"}, &out); err == nil {
		t.Fatal("non-numeric alpha accepted")
	}
}

func TestSweepDeterministic(t *testing.T) {
	render := func() string {
		var out strings.Builder
		if err := run([]string{
			"-param", "alpha", "-values", "1", "-n", "64", "-reps", "3", "-seed", "9",
		}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render() != render() {
		t.Fatal("sweep output not deterministic for a fixed seed")
	}
}
