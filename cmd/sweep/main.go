// Command sweep runs a parameter sweep over n or α for a chosen algorithm
// and adversary and emits CSV for plotting:
//
//	sweep -param n -values 256,512,1024,2048 -alpha 0.9
//	sweep -param alpha -values 0.1,0.2,0.4,0.8 -n 2048 -adversary threshold-ride
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param     = fs.String("param", "n", `sweep parameter: "n" or "alpha"`)
		values    = fs.String("values", "", "comma-separated sweep values (required)")
		n         = fs.Int("n", 1024, "players (fixed when sweeping alpha)")
		mRatio    = fs.Float64("m-ratio", 1, "objects per player (m = ratio·n)")
		good      = fs.Int("good", 1, "good objects")
		alpha     = fs.Float64("alpha", 0.9, "honest fraction (fixed when sweeping n)")
		algorithm = fs.String("algorithm", "distill", "honest algorithm")
		adv       = fs.String("adversary", "silent", "Byzantine strategy")
		reps      = fs.Int("reps", 10, "replications per point")
		seed      = fs.Uint64("seed", 1, "base seed")
		parallel  = fs.Int("parallel", 1, "replications run concurrently per point (rows stay deterministic)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *values == "" {
		return fmt.Errorf("-values is required")
	}
	if *param != "n" && *param != "alpha" {
		return fmt.Errorf("unknown -param %q", *param)
	}

	fmt.Fprintln(out, "param,value,mean_probes,p95_probes,mean_rounds,success_rate")
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		var curN = *n
		var curAlpha = *alpha
		switch *param {
		case "n":
			v, err := strconv.Atoi(raw)
			if err != nil {
				return fmt.Errorf("value %q: %w", raw, err)
			}
			curN = v
		case "alpha":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return fmt.Errorf("value %q: %w", raw, err)
			}
			curAlpha = v
		}
		// Replications run concurrently but results are gathered per rep and
		// folded in rep order, so every CSV cell is bit-identical to the
		// sequential run (float accumulation order included).
		results := make([]*repro.Result, *reps)
		errs := make([]error, *reps)
		workers := *parallel
		if workers <= 1 {
			workers = 1
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for r := 0; r < *reps; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[r], errs[r] = repro.Run(repro.SearchConfig{
					Players:     curN,
					Objects:     int(*mRatio * float64(curN)),
					GoodObjects: *good,
					Alpha:       curAlpha,
					Algorithm:   *algorithm,
					Adversary:   *adv,
					Seed:        *seed + uint64(r),
				})
			}(r)
		}
		wg.Wait()
		var probes, rounds, success []float64
		for r := 0; r < *reps; r++ {
			if errs[r] != nil {
				return errs[r]
			}
			res := results[r]
			probes = append(probes, res.HonestProbes()...)
			rounds = append(rounds, float64(res.Rounds))
			success = append(success, res.SuccessFraction())
		}
		fmt.Fprintf(out, "%s,%s,%.4f,%.4f,%.4f,%.4f\n",
			*param, raw,
			stats.Mean(probes), stats.Quantile(probes, 0.95),
			stats.Mean(rounds), stats.Mean(success))
	}
	return nil
}
