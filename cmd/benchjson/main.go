// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a stable JSON document for recording benchmark baselines in the repo:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Standard metrics (ns/op, B/op, allocs/op) get their own fields; any custom
// testing.B ReportMetric units (probes/player, table_rows, …) land in the
// metrics map. When the same benchmark name appears more than once — e.g. a
// quick pass and a high -benchtime pass concatenated — the later entry wins,
// so multi-pass harnesses can refine individual numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole baseline file.
type Doc struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := parse(in)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, buf, 0o644)
	}
	_, err = out.Write(buf)
	return err
}

func parse(in io.Reader) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}}
	index := map[string]int{} // name → position in doc.Benchmarks; later wins
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
			strings.HasPrefix(line, "pkg:") || strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Env[key] = strings.TrimSpace(val)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		e, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if at, seen := index[e.Name]; seen {
			doc.Benchmarks[at] = e
		} else {
			index[e.Name] = len(doc.Benchmarks)
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return doc, nil
}

// parseBenchLine decodes one result line: a name, an iteration count, then
// value/unit pairs.
//
//	BenchmarkFoo-8   1000   1234 ns/op   56 B/op   7 allocs/op   9.2 probes/player
func parseBenchLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, fmt.Errorf("malformed bench line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bench line %q: iterations: %w", line, err)
	}
	e := Entry{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bench line %q: value %q: %w", line, fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = val
		case "allocs/op":
			e.AllocsOp = val
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	return e, nil
}
