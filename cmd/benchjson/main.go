// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a stable JSON document for recording benchmark baselines in the repo:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Standard metrics (ns/op, B/op, allocs/op) get their own fields; any custom
// testing.B ReportMetric units (probes/player, table_rows, …) land in the
// metrics map. When the same benchmark name appears more than once — e.g. a
// quick pass and a high -benchtime pass concatenated — the later entry wins,
// so multi-pass harnesses can refine individual numbers.
//
// With -baseline it becomes a regression gate instead: the fresh results on
// stdin are diffed against a recorded baseline file and the run fails when
// any shared benchmark's ns/op grew by more than -max-regress percent:
//
//	go test -bench 'BenchmarkBillboard' . | benchjson -baseline BENCH_PR2.json -max-regress 5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole baseline file.
type Doc struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON to this file instead of stdout")
	baseline := fs.String("baseline", "", "diff ns/op against this recorded baseline instead of emitting JSON")
	maxRegress := fs.Float64("max-regress", 5, "with -baseline: fail when ns/op grew by more than this percent")
	faster := fs.String("faster", "", `scaling gate "A<B": fail unless benchmark A ran in fewer ns/op than B in this input`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := parse(in)
	if err != nil {
		return err
	}
	captureEnv(doc.Env)
	if *baseline != "" {
		return diff(doc, *baseline, *maxRegress, out)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath != "" {
		// Record before gating so a failed gate still leaves the numbers on
		// disk for inspection.
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			return err
		}
	} else if _, err := out.Write(buf); err != nil {
		return err
	}
	if *faster != "" {
		return requireFaster(doc, *faster, out)
	}
	return nil
}

// requireFaster enforces a same-run ordering gate, spec "A<B": benchmark
// A's ns/op must be strictly below B's. This is how the Makefile asserts
// the parallel sharded commit actually buys throughput on a multi-core box
// — shards-16 must beat shards-1 in absolute time, not merely avoid
// regressing against a recorded baseline.
func requireFaster(doc *Doc, spec string, out io.Writer) error {
	aName, bName, ok := strings.Cut(spec, "<")
	if !ok {
		return fmt.Errorf(`-faster %q: want the form "A<B"`, spec)
	}
	aName, bName = strings.TrimSpace(aName), strings.TrimSpace(bName)
	ns := map[string]float64{}
	for _, e := range doc.Benchmarks {
		ns[trimCPUSuffix(e.Name)] = e.NsPerOp
	}
	a, b := ns[aName], ns[bName]
	if a <= 0 || b <= 0 {
		return fmt.Errorf("-faster %s: input lacks a positive ns/op for both sides (%s=%.1f, %s=%.1f)",
			spec, aName, a, bName, b)
	}
	if a >= b {
		return fmt.Errorf("scaling gate failed: %s at %.1f ns/op is not faster than %s at %.1f ns/op",
			aName, a, bName, b)
	}
	fmt.Fprintf(out, "scaling gate ok: %s %.1f ns/op < %s %.1f ns/op (%.2fx)\n",
		aName, a, bName, b, b/a)
	return nil
}

// captureEnv records the execution environment next to whatever go test
// printed. benchjson reads the benchmark's own pipe, so it runs on the
// machine that produced the numbers — GOMAXPROCS and the core count here
// are the ones the results depend on (the sharded commit path parallelizes
// across lanes, so a 1-core recording is not comparable to a 16-core one).
func captureEnv(env map[string]string) {
	env["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	env["numcpu"] = strconv.Itoa(runtime.NumCPU())
	if env["cpu"] == "" {
		// go test omits the cpu: line on some platforms; fall back to the
		// kernel's model string so the baseline still names the machine.
		if model := cpuModel(); model != "" {
			env["cpu"] = model
		}
	}
}

// cpuModel reads the processor model from /proc/cpuinfo; returns "" where
// that file does not exist (non-linux) or has no model line.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// warnEnvMismatch prints a loud banner when the current run's environment
// differs from the baseline's on any key both sides recorded. Keys missing
// on either side are ignored — baselines recorded before env capture stay
// diffable. Never fails the run: a machine change makes the deltas suspect,
// not wrong.
func warnEnvMismatch(cur, base map[string]string, out io.Writer) {
	var keys []string
	for k, bv := range base {
		if cv, ok := cur[k]; ok && cv != bv {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	fmt.Fprintln(out, "=================================================================")
	fmt.Fprintln(out, "WARNING: benchmark environment differs from the recorded baseline;")
	fmt.Fprintln(out, "the deltas below may reflect the machine, not the code:")
	for _, k := range keys {
		fmt.Fprintf(out, "  %-12s baseline %q, current %q\n", k, base[k], cur[k])
	}
	fmt.Fprintln(out, "=================================================================")
}

// diff compares the fresh results against a recorded baseline and errors
// when any shared benchmark regressed by more than maxRegress percent on
// ns/op. Names are matched with the GOMAXPROCS suffix stripped so a
// baseline recorded at -cpu 1 still gates runs on multicore machines;
// benchmarks present on only one side are reported but never fail the run.
func diff(cur *Doc, baselinePath string, maxRegress float64, out io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			// A missing baseline is the clean-checkout case (the BENCH_*.json
			// files are recorded per machine, not committed everywhere): the
			// gate cannot run, but that should not fail `make check` — skip
			// loudly so the absence is visible, unlike a malformed baseline,
			// which stays fatal (it means the recording is corrupt).
			fmt.Fprintln(out, "=================================================================")
			fmt.Fprintf(out, "SKIP: baseline %s does not exist; regression gate not run.\n", baselinePath)
			fmt.Fprintln(out, "Record it with `make bench-diff` (or benchjson -o) to arm the gate.")
			fmt.Fprintln(out, "=================================================================")
			return nil
		}
		return err
	}
	var base Doc
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	// A baseline entry without a positive ns/op cannot anchor a delta —
	// dividing by it would print Inf/NaN, and skipping it would silently
	// un-gate the benchmark. Track those names and fail loudly when the
	// current run shares one: the baseline needs re-recording.
	baseNs := map[string]float64{}
	baseBad := map[string]bool{}
	for _, e := range base.Benchmarks {
		if e.NsPerOp > 0 {
			baseNs[trimCPUSuffix(e.Name)] = e.NsPerOp
		} else {
			baseBad[trimCPUSuffix(e.Name)] = true
		}
	}
	if len(baseNs) == 0 {
		return fmt.Errorf("baseline %s: no benchmark has a positive ns/op; re-record it", baselinePath)
	}
	warnEnvMismatch(cur.Env, base.Env, out)

	var regressions, unanchored []string
	fmt.Fprintf(out, "%-40s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, e := range cur.Benchmarks {
		name := trimCPUSuffix(e.Name)
		b, ok := baseNs[name]
		if baseBad[name] && !ok {
			unanchored = append(unanchored, name)
			continue
		}
		if ok && e.NsPerOp <= 0 {
			unanchored = append(unanchored, name+" (current run has no ns/op)")
			continue
		}
		if !ok {
			fmt.Fprintf(out, "%-40s %14s %14.1f %9s\n", name, "-", e.NsPerOp, "new")
			continue
		}
		delete(baseNs, name)
		delta := 100 * (e.NsPerOp - b) / b
		verdict := fmt.Sprintf("%+7.1f%%", delta)
		if delta > maxRegress {
			verdict += " FAIL"
			regressions = append(regressions, fmt.Sprintf("%s: %.1f → %.1f ns/op (%+.1f%% > %.1f%%)",
				name, b, e.NsPerOp, delta, maxRegress))
		}
		fmt.Fprintf(out, "%-40s %14.1f %14.1f %s\n", name, b, e.NsPerOp, verdict)
	}
	missing := make([]string, 0, len(baseNs))
	for name := range baseNs {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(out, "%-40s %14.1f %14s %9s\n", name, baseNs[name], "-", "not run")
	}
	if len(unanchored) > 0 {
		sort.Strings(unanchored)
		return fmt.Errorf("cannot compute a delta for %d benchmark(s) — zero or missing ns/op in %s:\n  %s\nre-record the baseline",
			len(unanchored), baselinePath, strings.Join(unanchored, "\n  "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.1f%%:\n  %s",
			len(regressions), maxRegress, strings.Join(regressions, "\n  "))
	}
	return nil
}

// trimCPUSuffix drops go test's "-<GOMAXPROCS>" benchmark name suffix.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func parse(in io.Reader) (*Doc, error) {
	doc := &Doc{Env: map[string]string{}}
	index := map[string]int{} // name → position in doc.Benchmarks; later wins
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
			strings.HasPrefix(line, "pkg:") || strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Env[key] = strings.TrimSpace(val)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		e, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if at, seen := index[e.Name]; seen {
			doc.Benchmarks[at] = e
		} else {
			index[e.Name] = len(doc.Benchmarks)
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return doc, nil
}

// parseBenchLine decodes one result line: a name, an iteration count, then
// value/unit pairs.
//
//	BenchmarkFoo-8   1000   1234 ns/op   56 B/op   7 allocs/op   9.2 probes/player
func parseBenchLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, fmt.Errorf("malformed bench line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bench line %q: iterations: %w", line, err)
	}
	e := Entry{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bench line %q: value %q: %w", line, fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = val
		case "allocs/op":
			e.AllocsOp = val
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	return e, nil
}
