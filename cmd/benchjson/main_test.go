package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkEngineRoundDistill      	    2194	    494819 ns/op	         9.220 probes/player	  438138 B/op	    1113 allocs/op
BenchmarkBillboardWindowCount    	  465112	      2591 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	3.831s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["pkg"] != "repro" {
		t.Fatalf("env = %v", doc.Env)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Name != "BenchmarkEngineRoundDistill" || e.Iterations != 2194 ||
		e.NsPerOp != 494819 || e.BytesPerOp != 438138 || e.AllocsOp != 1113 ||
		e.Metrics["probes/player"] != 9.22 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if w := doc.Benchmarks[1]; w.NsPerOp != 2591 || w.BytesPerOp != 0 || len(w.Metrics) != 0 {
		t.Fatalf("entry 1 = %+v", w)
	}
}

func TestLaterEntryWins(t *testing.T) {
	in := `BenchmarkFoo 10 100 ns/op
BenchmarkBar 20 200 ns/op
BenchmarkFoo 1000 42 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (deduped)", len(doc.Benchmarks))
	}
	if e := doc.Benchmarks[0]; e.Name != "BenchmarkFoo" || e.NsPerOp != 42 || e.Iterations != 1000 {
		t.Fatalf("dedup kept %+v, want the later BenchmarkFoo", e)
	}
}

func TestEmptyInputIsError(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected error on input with no bench lines")
	}
}
