package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkEngineRoundDistill      	    2194	    494819 ns/op	         9.220 probes/player	  438138 B/op	    1113 allocs/op
BenchmarkBillboardWindowCount    	  465112	      2591 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	3.831s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["pkg"] != "repro" {
		t.Fatalf("env = %v", doc.Env)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Name != "BenchmarkEngineRoundDistill" || e.Iterations != 2194 ||
		e.NsPerOp != 494819 || e.BytesPerOp != 438138 || e.AllocsOp != 1113 ||
		e.Metrics["probes/player"] != 9.22 {
		t.Fatalf("entry 0 = %+v", e)
	}
	if w := doc.Benchmarks[1]; w.NsPerOp != 2591 || w.BytesPerOp != 0 || len(w.Metrics) != 0 {
		t.Fatalf("entry 1 = %+v", w)
	}
}

func TestCaptureEnv(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	captureEnv(doc.Env)
	if got, want := doc.Env["gomaxprocs"], strconv.Itoa(runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("gomaxprocs = %q, want %q", got, want)
	}
	if got, want := doc.Env["numcpu"], strconv.Itoa(runtime.NumCPU()); got != want {
		t.Errorf("numcpu = %q, want %q", got, want)
	}
	// go test's own cpu: line wins over /proc/cpuinfo when present.
	if doc.Env["cpu"] != "Intel(R) Xeon(R)" {
		t.Errorf("cpu = %q, want the parsed cpu: line", doc.Env["cpu"])
	}
}

func TestLaterEntryWins(t *testing.T) {
	in := `BenchmarkFoo 10 100 ns/op
BenchmarkBar 20 200 ns/op
BenchmarkFoo 1000 42 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (deduped)", len(doc.Benchmarks))
	}
	if e := doc.Benchmarks[0]; e.Name != "BenchmarkFoo" || e.NsPerOp != 42 || e.Iterations != 1000 {
		t.Fatalf("dedup kept %+v, want the later BenchmarkFoo", e)
	}
}

func TestEmptyInputIsError(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected error on input with no bench lines")
	}
}

func writeBaseline(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const diffBaseline = `{
  "benchmarks": [
    {"name": "BenchmarkFast", "iterations": 100000, "ns_per_op": 100},
    {"name": "BenchmarkSlow", "iterations": 1000, "ns_per_op": 5000},
    {"name": "BenchmarkGone", "iterations": 10, "ns_per_op": 77}
  ]
}`

func TestDiffWithinBudgetPasses(t *testing.T) {
	base := writeBaseline(t, diffBaseline)
	// +4% and -10%: both inside a 5% regression budget. The -8 suffix must
	// match the unsuffixed baseline name.
	in := "BenchmarkFast-8 100000 104 ns/op\nBenchmarkSlow-8 1000 4500 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-max-regress", "5"}, strings.NewReader(in), &out); err != nil {
		t.Fatalf("diff failed inside budget: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkFast") || !strings.Contains(got, "+4.0%") {
		t.Fatalf("missing delta report:\n%s", got)
	}
	if !strings.Contains(got, "not run") {
		t.Fatalf("baseline-only benchmark not reported:\n%s", got)
	}
	// The baseline records no env at all, so no machine-mismatch warning.
	if strings.Contains(got, "WARNING") {
		t.Fatalf("env warning against an env-less baseline:\n%s", got)
	}
}

// A baseline recorded under a different GOMAXPROCS/core count must be
// flagged loudly: the sharded commit numbers depend on real parallelism, so
// a cross-machine delta is a machine comparison, not a code one. The
// warning never fails the run.
func TestDiffWarnsOnEnvMismatch(t *testing.T) {
	// gomaxprocs "0" can never match a live runtime value.
	base := writeBaseline(t, `{
  "env": {"gomaxprocs": "0", "irrelevant": "ignored"},
  "benchmarks": [{"name": "BenchmarkFast", "iterations": 100000, "ns_per_op": 100}]
}`)
	in := "BenchmarkFast 100000 100 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(in), &out); err != nil {
		t.Fatalf("env mismatch must warn, not fail: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "WARNING") || !strings.Contains(got, "gomaxprocs") {
		t.Fatalf("missing env-mismatch warning:\n%s", got)
	}
	if strings.Contains(got, "irrelevant") {
		t.Fatalf("warned on a key the current run does not record:\n%s", got)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, diffBaseline)
	in := "BenchmarkFast 100000 120 ns/op\nBenchmarkSlow 1000 5001 ns/op\n"
	var out strings.Builder
	err := run([]string{"-baseline", base, "-max-regress", "5"}, strings.NewReader(in), &out)
	if err == nil {
		t.Fatalf("20%% regression passed a 5%% gate:\n%s", out.String())
	}
	// Only the benchmark past the budget fails; +0.02% on BenchmarkSlow is fine.
	if !strings.Contains(err.Error(), "BenchmarkFast") || strings.Contains(err.Error(), "BenchmarkSlow") {
		t.Fatalf("wrong regression set: %v", err)
	}
}

func TestDiffNewBenchmarkIsNotRegression(t *testing.T) {
	base := writeBaseline(t, diffBaseline)
	in := "BenchmarkBrandNew 50 900 ns/op\nBenchmarkFast 100000 100 ns/op\n"
	var out strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(in), &out); err != nil {
		t.Fatalf("new benchmark treated as regression: %v", err)
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
}

// A baseline entry with a zero or missing ns/op cannot anchor a delta: the
// gate must say so instead of printing Inf/NaN or silently skipping the
// benchmark.
func TestDiffZeroBaselineNsIsClearError(t *testing.T) {
	base := writeBaseline(t, `{
  "benchmarks": [
    {"name": "BenchmarkFast", "iterations": 100000, "ns_per_op": 100},
    {"name": "BenchmarkZero", "iterations": 10, "ns_per_op": 0},
    {"name": "BenchmarkMissing", "iterations": 10}
  ]
}`)
	in := "BenchmarkFast 100000 100 ns/op\nBenchmarkZero 10 50 ns/op\nBenchmarkMissing 10 60 ns/op\n"
	var out strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(in), &out)
	if err == nil {
		t.Fatalf("zero-ns baseline passed silently:\n%s", out.String())
	}
	msg := err.Error()
	for _, want := range []string{"BenchmarkZero", "BenchmarkMissing", "re-record"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	if strings.Contains(msg, "Inf") || strings.Contains(msg, "NaN") {
		t.Fatalf("error leaked Inf/NaN: %q", msg)
	}
}

// A baseline with no usable entry at all is a recording mistake, not a
// clean pass.
func TestDiffAllZeroBaselineIsError(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks": [{"name": "BenchmarkA", "iterations": 5, "ns_per_op": 0}]}`)
	var out strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader("BenchmarkA 5 10 ns/op\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "re-record") {
		t.Fatalf("all-zero baseline: err = %v", err)
	}
}

// A current run that produced no ns/op for a gated benchmark is equally
// unanchored — the gate cannot pass it by default.
func TestDiffZeroCurrentNsIsClearError(t *testing.T) {
	base := writeBaseline(t, diffBaseline)
	in := "BenchmarkFast 100000 0 ns/op\n"
	var out strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(in), &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFast") {
		t.Fatalf("zero current ns/op: err = %v", err)
	}
}

// The -faster scaling gate compares two benchmarks from the same run: pass
// when A beat B, fail when it did not, and fail loudly when either side is
// missing (a renamed benchmark must not silently disarm the gate).
func TestFasterGate(t *testing.T) {
	in := "BenchmarkShardedPostBatch/shards-1-8 100 5000 ns/op\n" +
		"BenchmarkShardedPostBatch/shards-16-8 400 1200 ns/op\n"
	var out strings.Builder
	err := run([]string{"-faster", "BenchmarkShardedPostBatch/shards-16<BenchmarkShardedPostBatch/shards-1", "-o", filepath.Join(t.TempDir(), "b.json")},
		strings.NewReader(in), &out)
	if err != nil {
		t.Fatalf("gate failed on a 4x win: %v", err)
	}
	if !strings.Contains(out.String(), "scaling gate ok") {
		t.Fatalf("missing gate report:\n%s", out.String())
	}

	err = run([]string{"-faster", "BenchmarkShardedPostBatch/shards-1<BenchmarkShardedPostBatch/shards-16"},
		strings.NewReader(in), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "not faster") {
		t.Fatalf("inverted gate passed: %v", err)
	}

	err = run([]string{"-faster", "BenchmarkNope<BenchmarkShardedPostBatch/shards-1"},
		strings.NewReader(in), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "lacks a positive ns/op") {
		t.Fatalf("missing benchmark disarmed the gate: %v", err)
	}
}

// A missing baseline file is the clean-checkout case: the gate skips loudly
// instead of failing, so `make check` works before any baseline has been
// recorded on this machine.
func TestDiffMissingBaselineIsLoudSkip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nonexistent.json")
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader("BenchmarkFast 100 10 ns/op\n"), &out)
	if err != nil {
		t.Fatalf("missing baseline must skip, not fail: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "SKIP") || !strings.Contains(got, path) {
		t.Fatalf("skip banner missing or does not name the baseline:\n%s", got)
	}
}

// A baseline that exists but does not parse is a corrupt recording — that
// stays fatal, unlike the missing-file case.
func TestDiffMalformedBaselineStaysFatal(t *testing.T) {
	base := writeBaseline(t, "{not json")
	var out strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader("BenchmarkFast 100 10 ns/op\n"), &out)
	if err == nil {
		t.Fatalf("malformed baseline passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), base) {
		t.Fatalf("error does not name the baseline: %v", err)
	}
}

// An unreadable-for-other-reasons baseline (a directory, here) is not the
// clean-checkout case and must keep failing.
func TestDiffUnreadableBaselineStaysFatal(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-baseline", dir}, strings.NewReader("BenchmarkFast 100 10 ns/op\n"), &out)
	if err == nil {
		t.Fatalf("directory baseline passed:\n%s", out.String())
	}
	if strings.Contains(out.String(), "SKIP") {
		t.Fatalf("non-ENOENT read error downgraded to skip:\n%s", out.String())
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-16":       "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkE1_CostVsN":   "BenchmarkE1_CostVsN",
		"BenchmarkFoo-bar":      "BenchmarkFoo-bar",
		"BenchmarkWindow/n-2-4": "BenchmarkWindow/n-2",
	} {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
