package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestTraceEmitsPerRoundRows(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-alpha", "0.8", "-seed", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few lines:\n%s", out.String())
	}
	if lines[0] != "round,active,satisfied,probes,total_votes,voted_objects,good_votes" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first data row should be round 0: %s", lines[1])
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "# rounds=") || !strings.Contains(last, "success=1.000") {
		t.Fatalf("bad summary: %s", last)
	}
	// Satisfied counts must be non-decreasing across rounds.
	prev := -1
	for _, line := range lines[1 : len(lines)-1] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			t.Fatalf("bad row: %s", line)
		}
		var satisfied int
		if _, err := fmtSscan(fields[2], &satisfied); err != nil {
			t.Fatal(err)
		}
		if satisfied < prev {
			t.Fatalf("satisfied count decreased: %s", line)
		}
		prev = satisfied
	}
}

// fmtSscan is a tiny indirection so the test reads clearly.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, nil
		}
		n = n*10 + int(r-'0')
	}
	*v = n
	return 1, nil
}

func TestTraceWithAdversary(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-alpha", "0.5", "-adversary", "spam-distinct"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# rounds=") {
		t.Fatal("no summary line")
	}
}

func TestTraceBadAdversary(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-adversary", "nope"}, &out); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestTraceJSONMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "64", "-alpha", "0.8", "-seed", "2", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("too few lines:\n%s", out.String())
	}
	var first struct {
		Type  string `json:"type"`
		Round int    `json:"round"`
		Label string `json:"label"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("first line not JSON: %v\n%s", err, lines[0])
	}
	if first.Type != "round" || first.Round != 0 || first.Label != "distill" {
		t.Fatalf("bad first event: %+v", first)
	}
	var last struct {
		Type    string  `json:"type"`
		Rounds  int     `json:"rounds"`
		Success float64 `json:"success"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last line not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if last.Type != "summary" || last.Rounds != len(lines)-1 || last.Success != 1 {
		t.Fatalf("bad summary event: %+v", last)
	}
}

// TestTraceJSONMatchesCSV pins that both modes describe the same run: the
// per-round numbers in -json output equal the CSV rows at the same seed.
func TestTraceJSONMatchesCSV(t *testing.T) {
	args := []string{"-n", "64", "-alpha", "0.8", "-seed", "5"}
	var csvOut, jsonOut strings.Builder
	if err := run(args, &csvOut); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-json"), &jsonOut); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	jsonLines := strings.Split(strings.TrimSpace(jsonOut.String()), "\n")
	csvRows := csvLines[1 : len(csvLines)-1] // strip header and summary
	jsonRows := jsonLines[:len(jsonLines)-1] // strip summary event
	if len(csvRows) != len(jsonRows) {
		t.Fatalf("row count: csv %d vs json %d", len(csvRows), len(jsonRows))
	}
	for i, row := range jsonRows {
		var e struct {
			Round        int `json:"round"`
			Active       int `json:"active"`
			Satisfied    int `json:"satisfied"`
			Probes       int `json:"probes"`
			TotalVotes   int `json:"total_votes"`
			VotedObjects int `json:"voted_objects"`
			GoodVotes    int `json:"good_votes"`
		}
		if err := json.Unmarshal([]byte(row), &e); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d",
			e.Round, e.Active, e.Satisfied, e.Probes, e.TotalVotes, e.VotedObjects, e.GoodVotes)
		if csvRows[i] != want {
			t.Fatalf("row %d: csv %q vs json-derived %q", i, csvRows[i], want)
		}
	}
}
