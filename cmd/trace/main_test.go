package main

import (
	"strings"
	"testing"
)

func TestTraceEmitsPerRoundRows(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-alpha", "0.8", "-seed", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few lines:\n%s", out.String())
	}
	if lines[0] != "round,active,satisfied,probes,total_votes,voted_objects,good_votes" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first data row should be round 0: %s", lines[1])
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "# rounds=") || !strings.Contains(last, "success=1.000") {
		t.Fatalf("bad summary: %s", last)
	}
	// Satisfied counts must be non-decreasing across rounds.
	prev := -1
	for _, line := range lines[1 : len(lines)-1] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			t.Fatalf("bad row: %s", line)
		}
		var satisfied int
		if _, err := fmtSscan(fields[2], &satisfied); err != nil {
			t.Fatal(err)
		}
		if satisfied < prev {
			t.Fatalf("satisfied count decreased: %s", line)
		}
		prev = satisfied
	}
}

// fmtSscan is a tiny indirection so the test reads clearly.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, nil
		}
		n = n*10 + int(r-'0')
	}
	*v = n
	return 1, nil
}

func TestTraceWithAdversary(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-alpha", "0.5", "-adversary", "spam-distinct"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# rounds=") {
		t.Fatal("no summary line")
	}
}

func TestTraceBadAdversary(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-adversary", "nope"}, &out); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}
