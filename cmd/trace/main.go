// Command trace runs one simulation and emits a per-round trace of the
// run's dynamics — active players, satisfied players, votes, good-object
// votes — for plotting how the billboard state evolves:
//
//	trace -n 1024 -alpha 0.5 -adversary spam-distinct > trace.csv
//	trace -n 1024 -json > trace.jsonl
//
// The default output is CSV with a trailing "#"-prefixed summary line;
// -json switches to JSON Lines (one RoundEvent per round, then one
// summary event), the same schema the -trace-out flags of distill-sim
// and experiments write.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

// summaryEvent is the final JSONL record in -json mode.
type summaryEvent struct {
	Type       string  `json:"type"` // always "summary"
	Rounds     int     `json:"rounds"`
	Success    float64 `json:"success"`
	MeanProbes float64 `json:"mean_probes"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 1024, "number of players")
		m         = fs.Int("m", 0, "number of objects (0 = n)")
		good      = fs.Int("good", 1, "number of good objects")
		alpha     = fs.Float64("alpha", 0.9, "honest fraction")
		algorithm = fs.String("algorithm", "distill", "honest algorithm")
		adv       = fs.String("adversary", "silent", "Byzantine strategy")
		seed      = fs.Uint64("seed", 1, "random seed")
		jsonOut   = fs.Bool("json", false, "emit JSON Lines instead of CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *m == 0 {
		*m = *n
	}

	cfg := repro.SearchConfig{
		Players: *n, Objects: *m, GoodObjects: *good,
		Alpha: *alpha, Algorithm: *algorithm, Adversary: *adv,
		Seed: *seed, MaxRounds: 1 << 16,
	}

	var observer repro.Observer
	var tr *repro.TraceWriter
	if *jsonOut {
		tr = repro.NewTraceWriter(out)
		observer = repro.NewTraceObserver(tr, *algorithm, 0)
	} else {
		fmt.Fprintln(out, "round,active,satisfied,probes,total_votes,voted_objects,good_votes")
		observer = repro.FuncObserver(func(s repro.RoundStats) {
			fmt.Fprintf(out, "%d,%d,%d,%d,%d,%d,%d\n",
				s.Round, s.ActiveHonest, s.SatisfiedHonest, s.ProbesThisRound,
				s.TotalVotes, s.VotedObjects, s.GoodVotes)
		})
	}

	res, err := repro.Run(cfg, repro.WithObserver(observer))
	if err != nil {
		return err
	}
	if *jsonOut {
		tr.Emit(summaryEvent{
			Type:       "summary",
			Rounds:     res.Rounds,
			Success:    res.SuccessFraction(),
			MeanProbes: res.MeanHonestProbes(),
		})
		return tr.Err()
	}
	fmt.Fprintf(out, "# rounds=%d success=%.3f mean_probes=%.3f\n",
		res.Rounds, res.SuccessFraction(), res.MeanHonestProbes())
	return nil
}
