// Command trace runs one simulation and emits a per-round CSV of the run's
// dynamics — active players, satisfied players, votes, good-object votes —
// for plotting how the billboard state evolves:
//
//	trace -n 1024 -alpha 0.5 -adversary spam-distinct > trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/adversary"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 1024, "number of players")
		m         = fs.Int("m", 0, "number of objects (0 = n)")
		good      = fs.Int("good", 1, "number of good objects")
		alpha     = fs.Float64("alpha", 0.9, "honest fraction")
		algorithm = fs.String("algorithm", "distill", "honest algorithm")
		adv       = fs.String("adversary", "silent", "Byzantine strategy")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *m == 0 {
		*m = *n
	}

	u, err := object.NewPlanted(object.Planted{M: *m, Good: *good}, rng.New(*seed))
	if err != nil {
		return err
	}
	proto, err := repro.NewProtocol(*algorithm)
	if err != nil {
		return err
	}
	var advStrategy sim.Adversary
	if *adv != "" && *adv != "silent" {
		advStrategy = adversary.ByName(*adv)
		if advStrategy == nil {
			return fmt.Errorf("unknown adversary %q (valid: %v)", *adv, adversary.Names())
		}
	}

	fmt.Fprintln(out, "round,active,satisfied,probes,total_votes,voted_objects,good_votes")
	engine, err := sim.NewEngine(sim.Config{
		Universe:  u,
		Protocol:  proto,
		Adversary: advStrategy,
		N:         *n,
		Alpha:     *alpha,
		Seed:      *seed,
		MaxRounds: 1 << 16,
		Observer: func(s sim.RoundStats) {
			fmt.Fprintf(out, "%d,%d,%d,%d,%d,%d,%d\n",
				s.Round, s.ActiveHonest, s.SatisfiedHonest, s.ProbesThisRound,
				s.TotalVotes, s.VotedObjects, s.GoodVotes)
		},
	})
	if err != nil {
		return err
	}
	res, err := engine.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# rounds=%d success=%.3f mean_probes=%.3f\n",
		res.Rounds, res.SuccessFraction(), res.MeanHonestProbes())
	return nil
}
