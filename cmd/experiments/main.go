// Command experiments regenerates the paper-reproduction tables E1…E13
// (see DESIGN.md §5 for the claim index and EXPERIMENTS.md for recorded
// results).
//
//	experiments                  # run everything at full scale
//	experiments -scale 0.2       # quick pass
//	experiments -only E1,E7      # a subset
//	experiments -csv out/        # also write one CSV per experiment
//	experiments -parallel 4      # run 4 experiments concurrently
//	experiments -cpuprofile cpu.pprof   # profile the run
//	experiments -trace-out run.jsonl    # JSONL event per experiment
//
// It also runs declarative scenarios (a builtin name or a JSON file path):
//
//	experiments -scenario flash-crowd -seed 7
//	experiments -scenario testdata/scenarios/churn-trace.json
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", 1, "workload scale (1 = full EXPERIMENTS.md configuration)")
		seed       = fs.Uint64("seed", 0, "base seed family (0 = default)")
		only       = fs.String("only", "", "comma-separated experiment ids to run (default all)")
		csvDir     = fs.String("csv", "", "directory to write per-experiment CSV files into")
		workers    = fs.Int("workers", 0, "replication parallelism (0 = GOMAXPROCS)")
		parallel   = fs.Int("parallel", 1, "experiments run concurrently (output order is unchanged)")
		ablations  = fs.Bool("ablations", false, "also run the design-choice ablations A1…A5")
		extensions = fs.Bool("extensions", false, "also run the §6 open-problem extensions X1…X8")
		format     = fs.String("format", "text", `output format: "text" or "markdown"`)
		list       = fs.Bool("list", false, "list all experiment ids and claims, then exit")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		traceOut   = fs.String("trace-out", "", "write one JSONL event per completed experiment to this file")
		scenarioIn = fs.String("scenario", "", "run a declarative scenario instead: a builtin name or a JSON file path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		all := repro.Experiments()
		all = append(all, repro.ExperimentAblations()...)
		all = append(all, repro.ExperimentExtensions()...)
		for _, e := range all {
			fmt.Fprintf(out, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		fmt.Fprintf(out, "scenarios (-scenario): %s, or a JSON file path\n",
			strings.Join(repro.ScenarioNames(), ", "))
		return nil
	}

	if *scenarioIn != "" {
		return runScenario(*scenarioIn, *seed, out)
	}

	var selected []repro.Experiment
	if *only == "" {
		selected = repro.Experiments()
		if *ablations {
			selected = append(selected, repro.ExperimentAblations()...)
		}
		if *extensions {
			selected = append(selected, repro.ExperimentExtensions()...)
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := repro.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *format != "text" && *format != "markdown" {
		return fmt.Errorf("unknown -format %q", *format)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	var trace *repro.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		trace = repro.NewTraceWriter(f)
	}

	opts := repro.ExperimentOptions{Scale: *scale, BaseSeed: *seed, Workers: *workers}
	runOne := func(e repro.Experiment, out io.Writer) error {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		// The trace writer is concurrency-safe, so parallel mode emits
		// whole events in completion order (never interleaved).
		trace.Emit(experimentEvent{
			Type: "experiment", ID: e.ID, Title: e.Title,
			Seconds: time.Since(start).Seconds(), Rows: tab.NumRows(),
		})
		switch *format {
		case "markdown":
			fmt.Fprintf(out, "## %s — %s\n\n", e.ID, e.Title)
			fmt.Fprintf(out, "**Claim.** %s\n\n", e.Claim)
			fmt.Fprintf(out, "%s\n", tab.Markdown())
		default:
			fmt.Fprintf(out, "=== %s — %s (%.1fs)\n", e.ID, e.Title, time.Since(start).Seconds())
			fmt.Fprintf(out, "claim: %s\n\n", e.Claim)
			fmt.Fprintln(out, tab.String())
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	if *parallel <= 1 {
		for _, e := range selected {
			if err := runOne(e, out); err != nil {
				return err
			}
		}
		return trace.Err()
	}

	// Parallel mode: each experiment renders into its own buffer; buffers are
	// flushed in selection order, so the output is byte-stable against the
	// sequential run (modulo per-experiment wall-clock stamps). Each
	// experiment's replications are seeded independently of scheduling, so
	// the numbers themselves are identical too.
	bufs := make([]bytes.Buffer, len(selected))
	errs := make([]error, len(selected))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e repro.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = runOne(e, &bufs[i])
		}(i, e)
	}
	wg.Wait()
	for i := range selected {
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return trace.Err()
}

// runScenario loads nameOrPath as a scenario file if it exists on disk,
// else as a builtin name, runs it with the given seed, and prints a
// summary. The printed digest is the replay contract: the same
// (scenario, seed) always reproduces it byte for byte.
func runScenario(nameOrPath string, seed uint64, out io.Writer) error {
	var sc *repro.Scenario
	var err error
	if _, statErr := os.Stat(nameOrPath); statErr == nil {
		sc, err = repro.LoadScenario(nameOrPath)
	} else {
		sc, err = repro.BuiltinScenario(nameOrPath)
	}
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := repro.RunScenario(context.Background(), sc, repro.WithSeed(seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "=== scenario %s (%s backend, %.1fs)\n", res.Name, res.Backend, time.Since(start).Seconds())
	if sc.Description != "" {
		fmt.Fprintf(out, "%s\n", sc.Description)
	}
	fmt.Fprintf(out, "seed %d: %d rounds, honest %d: found %d, departed %d, timed out %d, mean probes %.1f\n",
		res.Seed, res.Rounds, res.Honest, res.Found, res.Departed, res.TimedOut, res.MeanProbes)
	fmt.Fprintf(out, "digest sha256:%x\n", sha256.Sum256(res.Digest))
	return nil
}

// experimentEvent is the JSONL record -trace-out emits per completed
// experiment.
type experimentEvent struct {
	Type    string  `json:"type"` // always "experiment"
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Rows    int     `json:"rows"`
}
