package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOnlySubsetRuns(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-only", "E12", "-scale", "0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "=== E12") {
		t.Fatalf("missing E12 header:\n%s", got)
	}
	if strings.Contains(got, "=== E1 ") {
		t.Fatalf("-only leaked other experiments:\n%s", got)
	}
}

func TestAblationByID(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "A1", "-scale", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== A1") {
		t.Fatalf("A1 not runnable via -only:\n%s", out.String())
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestCSVWritten(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-only", "E12", "-scale", "0.1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "n,dishonest,success rate,rounds") {
		t.Fatalf("unexpected CSV header: %s", data)
	}
}

func TestMarkdownFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "E12", "-scale", "0.1", "-format", "markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "## E12 —") || !strings.Contains(got, "**Claim.**") {
		t.Fatalf("markdown structure missing:\n%s", got)
	}
	if !strings.Contains(got, "|---|") {
		t.Fatalf("no markdown pipe table:\n%s", got)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-format", "yaml", "-only", "E12", "-scale", "0.1"}, &out); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestTraceOutWritesExperimentEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out strings.Builder
	if err := run([]string{"-only", "E12,A1", "-scale", "0.1", "-trace-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 trace events, got %d:\n%s", len(lines), data)
	}
	ids := map[string]bool{}
	for _, line := range lines {
		var e struct {
			Type    string  `json:"type"`
			ID      string  `json:"id"`
			Seconds float64 `json:"seconds"`
			Rows    int     `json:"rows"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if e.Type != "experiment" || e.Rows <= 0 || e.Seconds < 0 {
			t.Fatalf("unexpected event: %+v", e)
		}
		ids[e.ID] = true
	}
	if !ids["E12"] || !ids["A1"] {
		t.Fatalf("missing experiment ids in trace: %v", ids)
	}
}

func TestListFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"E1", "E13", "A1", "A4", "X1", "X6"} {
		if !strings.Contains(got, id+" ") {
			t.Fatalf("missing %s in list:\n%s", id, got)
		}
	}
}

func TestScenarioBuiltinRuns(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "flash-crowd", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "=== scenario flash-crowd") {
		t.Fatalf("missing scenario header:\n%s", got)
	}
	if !strings.Contains(got, "digest ") {
		t.Fatalf("missing digest line:\n%s", got)
	}
	// Replay: the digest line must reproduce byte for byte.
	var again strings.Builder
	if err := run([]string{"-scenario", "flash-crowd", "-seed", "7"}, &again); err != nil {
		t.Fatal(err)
	}
	digestLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "digest ") {
				return line
			}
		}
		return ""
	}
	if d := digestLine(got); d == "" || d != digestLine(again.String()) {
		t.Fatalf("scenario replay digest mismatch:\n%s\nvs\n%s", got, again.String())
	}
}

func TestScenarioFileRuns(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "flash-crowd.json")
	var out strings.Builder
	if err := run([]string{"-scenario", path, "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digest ") {
		t.Fatalf("missing digest line:\n%s", out.String())
	}
}

func TestScenarioUnknownRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "no-such-scenario"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
