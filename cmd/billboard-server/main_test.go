package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPrintAndExit(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "3", "-m", "16", "-print-and-exit"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "listening on 127.0.0.1:") {
		t.Fatalf("no listen line:\n%s", got)
	}
	if strings.Count(got, "player ") != 3 {
		t.Fatalf("want 3 token lines:\n%s", got)
	}
	if !strings.Contains(got, "players 3, objects 16") {
		t.Fatalf("config line missing:\n%s", got)
	}
}

func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "1", "-m", "0", "-print-and-exit"}, &out); err == nil {
		t.Fatal("m=0 accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999", "-print-and-exit"}, &out); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestMetricsAddrFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "2", "-m", "16", "-metrics-addr", "127.0.0.1:0", "-print-and-exit"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "metrics on http://127.0.0.1:") {
		t.Fatalf("metrics endpoint line missing:\n%s", out.String())
	}
	// Disabled by default: no endpoint line without the flag.
	out.Reset()
	if err := run([]string{"-n", "2", "-m", "16", "-print-and-exit"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "metrics on") {
		t.Fatalf("metrics endpoint unexpectedly enabled:\n%s", out.String())
	}
	// An unbindable metrics address is an error, not a silent skip.
	if err := run([]string{"-metrics-addr", "256.0.0.1:99999", "-print-and-exit"}, &out); err == nil {
		t.Fatal("bad metrics address accepted")
	}
}

func TestPersistDirFlag(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	var out strings.Builder
	err := run([]string{"-n", "2", "-m", "16", "-persist-dir", dir, "-print-and-exit"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "durable mode: persist dir "+dir) ||
		!strings.Contains(out.String(), "fsync commit") {
		t.Fatalf("durable-mode line missing:\n%s", out.String())
	}
	// The store materialized on disk (segment-0 wal).
	if _, err := os.Stat(filepath.Join(dir, "wal-00000000.log")); err != nil {
		t.Fatalf("persist dir has no wal: %v", err)
	}
	// A second run recovers from the same directory without complaint.
	out.Reset()
	if err := run([]string{"-n", "2", "-m", "16", "-persist-dir", dir, "-print-and-exit"}, &out); err != nil {
		t.Fatalf("restart from persist dir: %v", err)
	}

	// Conflicting and malformed configurations fail loudly.
	if err := run([]string{"-persist-dir", dir, "-journal", "x.log", "-print-and-exit"}, &out); err == nil ||
		!strings.Contains(err.Error(), "supersedes") {
		t.Fatalf("persist-dir + journal accepted: %v", err)
	}
	if err := run([]string{"-persist-dir", dir, "-fsync", "eventually", "-print-and-exit"}, &out); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
}

func TestFaultToleranceFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "2", "-m", "16",
		"-session-grace", "5s", "-barrier-deadline", "250ms",
		"-print-and-exit",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "session grace 5s, barrier deadline 250ms") {
		t.Fatalf("fault-tolerance config line missing:\n%s", out.String())
	}
	if err := run([]string{"-session-grace", "banana", "-print-and-exit"}, &out); err == nil {
		t.Fatal("unparseable duration accepted")
	}
}
