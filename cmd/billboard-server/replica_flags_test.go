package main

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// replicaCode runs the flag set and returns the ReplicaConfigError code
// ("" if the run succeeded or failed with a non-config error).
func replicaCode(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	if err == nil {
		return ""
	}
	var ce *server.ReplicaConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("run(%v) = %v, want *ReplicaConfigError", args, err)
	}
	return ce.Code
}

func TestReplicaFlagValidation(t *testing.T) {
	dir := t.TempDir()
	base := func(extra ...string) []string {
		return append([]string{
			"-n", "2", "-m", "16", "-print-and-exit",
			"-persist-dir", filepath.Join(dir, fmt.Sprintf("d%d", len(extra))),
		}, extra...)
	}
	cases := []struct {
		name string
		args []string
		code string
	}{
		{"replica flags without -replicas", base("-replica-id", "1"), "missing-replicas"},
		{"replicas without persist dir", []string{
			"-n", "2", "-m", "16", "-print-and-exit",
			"-replicas", "3", "-replica-peers", "a,b,c", "-replica-client-addrs", "x,y,z",
		}, "missing-dir"},
		{"replicas with -journal", []string{
			"-n", "2", "-m", "16", "-print-and-exit",
			"-persist-dir", filepath.Join(dir, "pj"), "-journal", filepath.Join(dir, "j.log"),
			"-replicas", "3", "-replica-peers", "a,b,c", "-replica-client-addrs", "x,y,z",
		}, "persist-conflict"},
		{"empty peer list", base("-replicas", "3"), "empty-group"},
		{"peer count mismatch", base("-replicas", "3", "-replica-peers", "a,b"), "group-size-mismatch"},
		{"even group size", base("-replicas", "2", "-replica-peers", "a,b",
			"-replica-client-addrs", "x,y"), "even-group"},
		{"quorum larger than group", base("-replicas", "3", "-replica-peers", "a,b,c",
			"-replica-client-addrs", "x,y,z", "-replica-quorum", "4"), "quorum-too-large"},
		{"quorum below majority", base("-replicas", "3", "-replica-peers", "a,b,c",
			"-replica-client-addrs", "x,y,z", "-replica-quorum", "1"), "quorum-too-small"},
		{"id out of range", base("-replicas", "3", "-replica-peers", "a,b,c",
			"-replica-client-addrs", "x,y,z", "-replica-id", "5"), "id-out-of-range"},
		{"client addr count mismatch", base("-replicas", "3", "-replica-peers", "a,b,c",
			"-replica-client-addrs", "x,y"), "addr-mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := replicaCode(t, tc.args...); got != tc.code {
				t.Fatalf("code = %q, want %q", got, tc.code)
			}
		})
	}
}

// TestReplicaBootstrapBanner boots a 3-member group's node 0 alone (its
// peers are named but absent — the leader's senders just retry in the
// background) and checks the operator banner.
func TestReplicaBootstrapBanner(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "2", "-m", "16", "-print-and-exit",
		"-persist-dir", filepath.Join(t.TempDir(), "r0"),
		"-replicas", "3", "-replica-id", "0",
		"-replica-peers", "127.0.0.1:0,127.0.0.1:1,127.0.0.1:2",
		"-replica-client-addrs", "127.0.0.1:0,127.0.0.1:1,127.0.0.1:2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "replica 0/3 leader (bootstrap): replication on 127.0.0.1:") {
		t.Fatalf("banner missing leader line:\n%s", got)
	}
	if !strings.Contains(got, "quorum 2/3") {
		t.Fatalf("banner missing quorum line:\n%s", got)
	}
	if strings.Count(got, "player ") != 2 {
		t.Fatalf("want 2 token lines:\n%s", got)
	}
}
