// Command billboard-server runs a standalone billboard service with a
// planted object universe, printing the address and per-player tokens so
// that distributed players (see examples/distributed) can connect from
// other processes or machines.
//
//	billboard-server -addr 127.0.0.1:7777 -n 32 -m 256 -good 2
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "billboard-server:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("billboard-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		n           = fs.Int("n", 16, "number of players")
		m           = fs.Int("m", 128, "number of objects")
		good        = fs.Int("good", 1, "number of good objects")
		alpha       = fs.Float64("alpha", 0.75, "advertised assumed honest fraction")
		seed        = fs.Uint64("seed", 1, "universe/token seed")
		journalPath = fs.String("journal", "", "append the billboard journal to this file (and recover from it if it exists)")
		persistDir  = fs.String("persist-dir", "", "run durably from this directory: full service state (board, round, probe ledger, sessions) is journaled and recovered on restart; supersedes -journal")
		snapEvery   = fs.Int("snapshot-every", 64, "with -persist-dir: rotate the journal behind a full snapshot every k committed rounds (0: never)")
		fsync       = fs.String("fsync", "commit", "with -persist-dir: journal fsync policy — commit (at round boundaries), none, or always")
		grace       = fs.Duration("session-grace", 0, "how long a disconnected player's session stays resumable (0: a disconnect deregisters the player immediately)")
		deadline    = fs.Duration("barrier-deadline", 0, "how long a round barrier waits for stragglers before force-Done'ing them (0: wait forever)")
		shards      = fs.Int("shards", 0, "partition the billboard by object id into this many independent shard lanes; v4 clients batch and pipeline posts per shard (0 or 1: single board)")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics (empty: disabled)")
		once        = fs.Bool("print-and-exit", false, "print config and exit (for tests)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := rng.New(*seed)
	u, err := object.NewPlanted(object.Planted{M: *m, Good: *good}, src)
	if err != nil {
		return err
	}
	tokens := make([]string, *n)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("tok-%d-%016x", i, src.Uint64())
	}
	// Operational events (session resume, lease expiry, force-done) go to
	// out; the mutex keeps concurrent connection handlers from interleaving.
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(out, format+"\n", args...)
	}
	cfg := server.Config{
		Universe: u, Tokens: tokens, Alpha: *alpha, Beta: u.Beta(),
		SessionGrace: *grace, BarrierDeadline: *deadline,
		Shards: *shards,
		Logf:   logf,
	}
	if *shards > 1 && *journalPath != "" {
		return fmt.Errorf("-shards requires -persist-dir for durability; -journal only covers a single board")
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	switch {
	case *persistDir != "":
		if *journalPath != "" {
			return fmt.Errorf("-persist-dir supersedes -journal; pass one or the other")
		}
		policy, err := journal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		st, err := journal.OpenStore(*persistDir, policy)
		if err != nil {
			return err
		}
		defer st.Close()
		cfg.Persist = st
		cfg.SnapshotEvery = *snapEvery
		fmt.Fprintf(out, "durable mode: persist dir %s, snapshot every %d round(s), fsync %s\n",
			*persistDir, *snapEvery, policy)
	case *journalPath != "":
		if prior, err := os.ReadFile(*journalPath); err == nil && len(prior) > 0 {
			cfg.Recover = bytes.NewReader(prior)
			fmt.Fprintf(out, "recovering billboard from %s (%d bytes)\n", *journalPath, len(prior))
		}
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Journal = journal.NewWriter(f)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *persistDir != "" && srv.Round() > 0 {
		fmt.Fprintf(out, "recovered to round %d from %s\n", srv.Round(), *persistDir)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Fprintf(out, "billboard server listening on %s\n", bound)
	if reg != nil {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		msrv := &http.Server{Handler: mux}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", mln.Addr())
	}
	fmt.Fprintf(out, "players %d, objects %d (%d good), advertised alpha %.3f\n",
		*n, *m, *good, *alpha)
	if *shards > 1 {
		fmt.Fprintf(out, "sharded: %d lanes by object id\n", *shards)
	}
	if *grace > 0 || *deadline > 0 {
		fmt.Fprintf(out, "session grace %v, barrier deadline %v\n", *grace, *deadline)
	}
	if fd := srv.ForceDone(); len(fd) > 0 {
		for p, r := range fd {
			fmt.Fprintf(out, "recovered force-done: player %d (round %d) may not rejoin\n", p, r)
		}
	}
	for i, tok := range tokens {
		fmt.Fprintf(out, "player %3d token %s\n", i, tok)
	}
	if *once {
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(out, "shutting down")
	return nil
}
