// Command billboard-server runs a standalone billboard service with a
// planted object universe, printing the address and per-player tokens so
// that distributed players (see examples/distributed) can connect from
// other processes or machines.
//
//	billboard-server -addr 127.0.0.1:7777 -n 32 -m 256 -good 2
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/journal"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "billboard-server:", err)
		// Replica misconfiguration is an operator error with a stable code;
		// exit 2 so wrappers can tell it from runtime failures.
		var ce *server.ReplicaConfigError
		if errors.As(err, &ce) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("billboard-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		n           = fs.Int("n", 16, "number of players")
		m           = fs.Int("m", 128, "number of objects")
		good        = fs.Int("good", 1, "number of good objects")
		alpha       = fs.Float64("alpha", 0.75, "advertised assumed honest fraction")
		seed        = fs.Uint64("seed", 1, "universe/token seed")
		journalPath = fs.String("journal", "", "append the billboard journal to this file (and recover from it if it exists)")
		persistDir  = fs.String("persist-dir", "", "run durably from this directory: full service state (board, round, probe ledger, sessions) is journaled and recovered on restart; supersedes -journal")
		snapEvery   = fs.Int("snapshot-every", 64, "with -persist-dir: rotate the journal behind a full snapshot every k committed rounds (0: never)")
		fsync       = fs.String("fsync", "commit", "with -persist-dir: journal fsync policy — commit (at round boundaries), none, or always")
		grace       = fs.Duration("session-grace", 0, "how long a disconnected player's session stays resumable (0: a disconnect deregisters the player immediately)")
		deadline    = fs.Duration("barrier-deadline", 0, "how long a round barrier waits for stragglers before force-Done'ing them (0: wait forever)")
		shards      = fs.Int("shards", 0, "partition the billboard by object id into this many independent shard lanes; v4 clients batch and pipeline posts per shard (0 or 1: single board)")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics (empty: disabled)")
		once        = fs.Bool("print-and-exit", false, "print config and exit (for tests)")

		replicas     = fs.Int("replicas", 0, "run the coordinator as a replica group of this size (odd, >= 3); every round is quorum-committed before clients observe it, and a follower takes over if the leader dies. 0 or 1: classic single coordinator")
		replicaID    = fs.Int("replica-id", 0, "with -replicas: this process's index into the peer lists")
		replicaPeers = fs.String("replica-peers", "", "with -replicas: comma-separated replication addresses, one per member, in id order")
		replicaCli   = fs.String("replica-client-addrs", "", "with -replicas: comma-separated client-facing addresses, one per member, in id order")
		replicaQuo   = fs.Int("replica-quorum", 0, "with -replicas: durable-commit quorum, self included (0: majority)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := rng.New(*seed)
	u, err := object.NewPlanted(object.Planted{M: *m, Good: *good}, src)
	if err != nil {
		return err
	}
	tokens := make([]string, *n)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("tok-%d-%016x", i, src.Uint64())
	}
	// Operational events (session resume, lease expiry, force-done) go to
	// out; the mutex keeps concurrent connection handlers from interleaving.
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(out, format+"\n", args...)
	}
	cfg := server.Config{
		Universe: u, Tokens: tokens, Alpha: *alpha, Beta: u.Beta(),
		SessionGrace: *grace, BarrierDeadline: *deadline,
		Shards: *shards,
		Logf:   logf,
	}
	if *shards > 1 && *journalPath != "" {
		return fmt.Errorf("-shards requires -persist-dir for durability; -journal only covers a single board")
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	if *replicas <= 1 {
		if *replicaPeers != "" || *replicaCli != "" || *replicaID != 0 || *replicaQuo != 0 {
			return server.NewReplicaConfigError("missing-replicas",
				"-replica-id/-replica-peers/-replica-client-addrs/-replica-quorum require -replicas > 1")
		}
	} else {
		// Replicated coordinator: the node owns persistence (one journal set
		// per member under -persist-dir), so the single-server persistence
		// flags must not double up.
		if *journalPath != "" {
			return server.NewReplicaConfigError("persist-conflict",
				"-replicas journals per member under -persist-dir; drop -journal")
		}
		if *persistDir == "" {
			return server.NewReplicaConfigError("missing-dir",
				"-replicas requires -persist-dir (each member journals its replicated state there)")
		}
		peers := splitAddrs(*replicaPeers)
		if len(peers) == 0 {
			return server.NewReplicaConfigError("empty-group",
				"-replica-peers must list one replication address per member")
		}
		if len(peers) != *replicas {
			return server.NewReplicaConfigError("group-size-mismatch",
				"-replica-peers lists %d address(es) for -replicas %d", len(peers), *replicas)
		}
		cfg.SnapshotEvery = *snapEvery
		rc := server.ReplicaConfig{
			ID:          *replicaID,
			Peers:       peers,
			ClientAddrs: splitAddrs(*replicaCli),
			Quorum:      *replicaQuo,
			Dir:         *persistDir,
			Logf:        logf,
		}
		return runReplicaNode(rc, cfg, reg, *metricsAddr, tokens, out, *once)
	}
	switch {
	case *persistDir != "":
		if *journalPath != "" {
			return fmt.Errorf("-persist-dir supersedes -journal; pass one or the other")
		}
		policy, err := journal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		st, err := journal.OpenStore(*persistDir, policy)
		if err != nil {
			return err
		}
		defer st.Close()
		cfg.Persist = st
		cfg.SnapshotEvery = *snapEvery
		fmt.Fprintf(out, "durable mode: persist dir %s, snapshot every %d round(s), fsync %s\n",
			*persistDir, *snapEvery, policy)
	case *journalPath != "":
		if prior, err := os.ReadFile(*journalPath); err == nil && len(prior) > 0 {
			cfg.Recover = bytes.NewReader(prior)
			fmt.Fprintf(out, "recovering billboard from %s (%d bytes)\n", *journalPath, len(prior))
		}
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Journal = journal.NewWriter(f)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *persistDir != "" && srv.Round() > 0 {
		fmt.Fprintf(out, "recovered to round %d from %s\n", srv.Round(), *persistDir)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Fprintf(out, "billboard server listening on %s\n", bound)
	if reg != nil {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		msrv := &http.Server{Handler: mux}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", mln.Addr())
	}
	fmt.Fprintf(out, "players %d, objects %d (%d good), advertised alpha %.3f\n",
		*n, *m, *good, *alpha)
	if *shards > 1 {
		fmt.Fprintf(out, "sharded: %d lanes by object id\n", *shards)
	}
	if *grace > 0 || *deadline > 0 {
		fmt.Fprintf(out, "session grace %v, barrier deadline %v\n", *grace, *deadline)
	}
	if fd := srv.ForceDone(); len(fd) > 0 {
		for p, r := range fd {
			fmt.Fprintf(out, "recovered force-done: player %d (round %d) may not rejoin\n", p, r)
		}
	}
	for i, tok := range tokens {
		fmt.Fprintf(out, "player %3d token %s\n", i, tok)
	}
	if *once {
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(out, "shutting down")
	return nil
}

// splitAddrs parses a comma-separated address list, trimming blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runReplicaNode runs one member of a coordinator replica group (the
// -replicas branch of run).
func runReplicaNode(rc server.ReplicaConfig, scfg server.Config, reg *obs.Registry, metricsAddr string, tokens []string, out io.Writer, once bool) error {
	// Validate up front so the quorum default (majority) is filled in for
	// the banner below; StartReplica re-validates the same config.
	if err := rc.Validate(); err != nil {
		return err
	}
	node, err := server.StartReplica(rc, scfg)
	if err != nil {
		return err
	}
	defer node.Close()

	role := "follower"
	if leading, _ := node.Leader(); leading {
		role = "leader (bootstrap)"
	}
	fmt.Fprintf(out, "replica %d/%d %s: replication on %s, clients on %s\n",
		rc.ID, len(rc.Peers), role, node.RepAddr(), node.ClientAddr())
	fmt.Fprintf(out, "quorum %d/%d, fsync commit (replicated rounds are always durable)\n",
		rc.Quorum, len(rc.Peers))
	if reg != nil {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		msrv := &http.Server{Handler: mux}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", mln.Addr())
	}
	for i, tok := range tokens {
		fmt.Fprintf(out, "player %3d token %s\n", i, tok)
	}
	if once {
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(out, "shutting down")
	return nil
}
