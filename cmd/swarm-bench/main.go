// Command swarm-bench drives a large block of simulated players through a
// multi-round DISTILL search on one machine: an in-process billboard server
// plus the swarm event-loop driver (repro.RunSwarm) multiplexing every
// player onto a few pipelined connections. A million players fit where a
// goroutine-and-socket-per-player fleet would exhaust file descriptors four
// orders of magnitude earlier.
//
//	swarm-bench -players 1000000 -max-rounds 4
//	swarm-bench -players 100000 -shards 4 -groups 8 -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swarm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("swarm-bench", flag.ContinueOnError)
	var (
		players   = fs.Int("players", 100_000, "players to drive")
		m         = fs.Int("m", 256, "number of objects")
		good      = fs.Int("good", 8, "number of good objects")
		shards    = fs.Int("shards", 0, "shard the billboard by object id (0 or 1: single board)")
		groups    = fs.Int("groups", 4, "swarm connection groups")
		chunk     = fs.Int("chunk", 4096, "probes/posts per frame")
		window    = fs.Int("window", 8, "pipelined frames in flight per connection")
		maxRounds = fs.Int("max-rounds", 4, "round bound; players still searching then time out")
		seed      = fs.Uint64("seed", 42, "universe/player seed")
		metrics   = fs.Bool("metrics", false, "print the swarm_* metric snapshot after the run")
		verbose   = fs.Bool("v", false, "log per-round progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	u, err := object.NewPlanted(object.Planted{M: *m, Good: *good}, rng.New(*seed))
	if err != nil {
		return err
	}
	const token = "swarm-bench"
	srv, err := server.New(server.Config{
		Universe:   u,
		Tokens:     make([]string, *players),
		Alpha:      1.0,
		Beta:       u.Beta(),
		Shards:     *shards,
		SwarmToken: token,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}

	reg := repro.NewMetrics()
	opts := []repro.SwarmOption{
		repro.WithSwarmGroups(*groups),
		repro.WithSwarmChunk(*chunk),
		repro.WithSwarmWindow(*window),
		repro.WithMetrics(reg),
	}
	if *verbose {
		logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
		opts = append(opts, repro.WithLogf(logf))
	}

	fmt.Fprintf(out, "swarm-bench: %d players, m=%d good=%d shards=%d groups=%d chunk=%d window=%d max-rounds=%d\n",
		*players, *m, *good, *shards, *groups, *chunk, *window, *maxRounds)
	start := time.Now()
	res, err := repro.RunSwarm(context.Background(), repro.SwarmConfig{
		Addr: addr, From: 0, To: *players, Token: token,
		Seed: *seed, MaxRounds: *maxRounds,
	}, opts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	nsPerPlayer := float64(elapsed.Nanoseconds()) / float64(*players)
	fmt.Fprintf(out, "rounds=%d found=%d timed-out=%d mean-probes=%.2f\n",
		res.Rounds, res.Found, res.TimedOut, res.MeanProbes)
	fmt.Fprintf(out, "wall=%s ns/player=%.0f players/s=%.0f\n",
		elapsed.Round(time.Millisecond), nsPerPlayer, float64(*players)/elapsed.Seconds())

	if *metrics {
		snap := reg.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(out, "%s %g\n", name, snap[name])
		}
	}
	return nil
}
