package main

import (
	"strings"
	"testing"
)

func TestSingleRunOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-m", "64", "-alpha", "0.8", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"protocol   distill", "adversary  silent", "players    64", "success    100.0%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestMultiRepOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-m", "64", "-alpha", "1", "-reps", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "replications       3") {
		t.Fatalf("missing replication summary:\n%s", got)
	}
	if !strings.Contains(got, "mean probes/player") {
		t.Fatalf("missing probes summary:\n%s", got)
	}
}

func TestAdversaryAndAlgorithmFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "64", "-m", "64", "-alpha", "0.5",
		"-algorithm", "async-round-robin", "-adversary", "collude",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "async-round-robin") {
		t.Fatalf("algorithm flag ignored:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "collude") {
		t.Fatalf("adversary flag ignored:\n%s", out.String())
	}
}

func TestBadFlagsSurface(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-algorithm", "nope", "-n", "8", "-m", "8"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-adversary", "nope", "-n", "8", "-m", "8"}, &out); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}
