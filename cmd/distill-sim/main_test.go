package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleRunOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-m", "64", "-alpha", "0.8", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"protocol   distill", "adversary  silent", "players    64", "success    100.0%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestMultiRepOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "64", "-m", "64", "-alpha", "1", "-reps", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "replications       3") {
		t.Fatalf("missing replication summary:\n%s", got)
	}
	if !strings.Contains(got, "mean probes/player") {
		t.Fatalf("missing probes summary:\n%s", got)
	}
}

func TestAdversaryAndAlgorithmFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "64", "-m", "64", "-alpha", "0.5",
		"-algorithm", "async-round-robin", "-adversary", "collude",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "async-round-robin") {
		t.Fatalf("algorithm flag ignored:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "collude") {
		t.Fatalf("adversary flag ignored:\n%s", out.String())
	}
}

func TestTraceOutWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	err := run([]string{"-n", "64", "-m", "64", "-alpha", "0.8", "-seed", "3", "-reps", "2", "-trace-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("too few trace events:\n%s", data)
	}
	reps := map[int]bool{}
	for _, line := range lines {
		var e struct {
			Type  string `json:"type"`
			Label string `json:"label"`
			Rep   int    `json:"rep"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if e.Type != "round" || e.Label != "distill" {
			t.Fatalf("unexpected event: %+v", e)
		}
		reps[e.Rep] = true
	}
	if !reps[0] || !reps[1] {
		t.Fatalf("expected events from both replications, got reps %v", reps)
	}
}

// TestTraceOutIsBehaviorNeutral pins that tracing does not perturb the
// run: stdout is byte-identical with and without -trace-out.
func TestTraceOutIsBehaviorNeutral(t *testing.T) {
	args := []string{"-n", "64", "-m", "64", "-alpha", "0.8", "-seed", "3"}
	var plain, traced strings.Builder
	if err := run(args, &plain); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run(append(args, "-trace-out", path), &traced); err != nil {
		t.Fatal(err)
	}
	if plain.String() != traced.String() {
		t.Fatalf("tracing changed the run:\n--- plain ---\n%s--- traced ---\n%s", plain.String(), traced.String())
	}
}

func TestBadFlagsSurface(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-algorithm", "nope", "-n", "8", "-m", "8"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-adversary", "nope", "-n", "8", "-m", "8"}, &out); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}
