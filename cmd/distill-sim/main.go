// Command distill-sim runs one configured search simulation and prints the
// per-run metrics. It is the quickest way to poke at the system:
//
//	distill-sim -n 1024 -m 1024 -alpha 0.9 -adversary spam-distinct
//	distill-sim -algorithm async-round-robin -n 4096 -alpha 0.5 -reps 20
//
// -trace-out FILE additionally writes a per-round JSONL trace (one
// RoundEvent per committed round, tagged with the replication index);
// tracing never changes the simulated outcome.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distill-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("distill-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 1024, "number of players")
		m         = fs.Int("m", 1024, "number of objects")
		good      = fs.Int("good", 1, "number of good objects")
		alpha     = fs.Float64("alpha", 0.9, "honest fraction")
		algorithm = fs.String("algorithm", "distill", fmt.Sprintf("honest algorithm %v", repro.ProtocolNames()))
		adv       = fs.String("adversary", "silent", fmt.Sprintf("Byzantine strategy %v", repro.Adversaries()))
		seed      = fs.Uint64("seed", 1, "base random seed")
		reps      = fs.Int("reps", 1, "number of replications")
		votes     = fs.Int("f", 1, "votes per player (§4.1)")
		errRate   = fs.Float64("error-rate", 0, "honest erroneous-vote probability (§4.1)")
		traceOut  = fs.String("trace-out", "", "write a per-round JSONL trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var trace *repro.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		trace = repro.NewTraceWriter(f)
	}

	var probes, rounds, successes []float64
	for r := 0; r < *reps; r++ {
		var opts []repro.RunOption
		if trace != nil {
			opts = append(opts, repro.WithObserver(repro.NewTraceObserver(trace, *algorithm, r)))
		}
		res, err := repro.Run(repro.SearchConfig{
			Players:         *n,
			Objects:         *m,
			GoodObjects:     *good,
			Alpha:           *alpha,
			Algorithm:       *algorithm,
			Adversary:       *adv,
			Seed:            *seed + uint64(r),
			VotesPerPlayer:  *votes,
			HonestErrorRate: *errRate,
		}, opts...)
		if err != nil {
			return err
		}
		if trace != nil && trace.Err() != nil {
			return trace.Err()
		}
		probes = append(probes, res.MeanHonestProbes())
		rounds = append(rounds, float64(res.Rounds))
		successes = append(successes, res.SuccessFraction())
		if *reps == 1 {
			fmt.Fprintf(out, "protocol   %s\n", res.Protocol)
			fmt.Fprintf(out, "adversary  %s\n", orSilent(res.Adversary))
			fmt.Fprintf(out, "players    %d (honest %d, α=%.3f)\n", res.N, len(res.Honest), res.Alpha)
			fmt.Fprintf(out, "objects    %d\n", res.M)
			fmt.Fprintf(out, "rounds     %d (timed out: %v)\n", res.Rounds, res.TimedOut)
			fmt.Fprintf(out, "success    %.1f%% of honest players\n", 100*res.SuccessFraction())
			fmt.Fprintf(out, "probes     %s\n", stats.Summarize(res.HonestProbes()))
			fmt.Fprintf(out, "cost       %s\n", stats.Summarize(res.HonestCosts()))
			return nil
		}
	}
	fmt.Fprintf(out, "replications       %d\n", *reps)
	fmt.Fprintf(out, "mean probes/player %s\n", stats.Summarize(probes))
	fmt.Fprintf(out, "rounds             %s\n", stats.Summarize(rounds))
	fmt.Fprintf(out, "success fraction   %s\n", stats.Summarize(successes))
	return nil
}

func orSilent(name string) string {
	if name == "" {
		return "silent"
	}
	return name
}
