package repro

import "repro/internal/wire"

// The public error contract of the networked billboard API. These are the
// terminal conditions a client cannot retry its way out of; everything else
// the transport machinery handles internally (reconnect, session resume,
// request dedup). Match with errors.Is — the concrete error always carries
// call context around the sentinel:
//
//	c, err := repro.Dial(ctx, addr, player, token)
//	switch {
//	case errors.Is(err, repro.ErrServerClosed):   // endpoint down or unreachable
//	case errors.Is(err, repro.ErrSessionExpired): // lease lapsed; state is gone
//	case errors.Is(err, repro.ErrBarrierDeadline): // expelled as a straggler
//	}
var (
	// ErrSessionExpired reports that the server no longer holds the
	// client's session: its lease lapsed (SessionGrace elapsed while
	// disconnected) or the server restarted without durable state. The
	// client's votes and dedup window are gone; the caller must dial a
	// fresh client and rejoin.
	ErrSessionExpired = wire.ErrSessionExpired

	// ErrServerClosed reports a dead endpoint: the dial (or a mid-call
	// reconnect) exhausted its retries without ever completing a handshake
	// on its final attempt. Best-effort classification — a partitioned but
	// living server is indistinguishable from a closed one.
	ErrServerClosed = wire.ErrServerClosed

	// ErrBarrierDeadline reports that the server's barrier deadline expelled
	// the player (force-done): it stalled a round past BarrierDeadline while
	// every other active player had finished. The session is terminated;
	// later calls under it fail.
	ErrBarrierDeadline = wire.ErrBarrierDeadline
)
