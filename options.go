package repro

import (
	"context"
	"net"
	"time"

	"repro/internal/scenario"
)

// This file is the unified functional-option layer. Every run entry point
// takes its own option interface — RunOption, ClusterOption, SwarmOption,
// DialOption, ScenarioOption — and a constructor whose knob exists on
// several of them returns a value implementing each of those interfaces, so
// the same repro.WithMetrics(reg) call works on Dial, RunSwarm,
// RunDistributedCluster, and RunScenario alike:
//
//	c, err := repro.Dial(ctx, addr, player, token, repro.WithMetrics(reg))
//	sres, err := repro.RunSwarm(ctx, cfg, repro.WithMetrics(reg))
//
// The interfaces are closed (their methods are unexported): options come
// from this package's With* constructors, and passing an option to an entry
// point it does not apply to is a compile error, not a silent no-op.

// RunOption customizes one Run call beyond what SearchConfig describes —
// hooks that take live values (observers, contexts) rather than plain
// parameters.
type RunOption interface{ applyRun(*EngineConfig) }

// ClusterOption customizes one RunDistributedCluster call on top of the
// ClusterConfig value. Options apply in order.
type ClusterOption interface{ applyCluster(*ClusterConfig) }

// SwarmOption customizes one RunSwarm call. Options apply in order over
// the config; unset knobs keep the documented defaults.
type SwarmOption interface{ applySwarm(*SwarmConfig) }

// DialOption customizes one Dial call. Options apply in order over the
// zero ClientOptions value; unset knobs keep the documented defaults.
type DialOption interface{ applyDial(*ClientOptions) }

// ScenarioOption customizes one RunScenario call: the seed and the
// operational hooks a Scenario deliberately does not encode.
type ScenarioOption interface{ applyScenario(*scenario.Options) }

// Per-family function adapters for single-purpose options.
type (
	runOptionFunc      func(*EngineConfig)
	clusterOptionFunc  func(*ClusterConfig)
	swarmOptionFunc    func(*SwarmConfig)
	dialOptionFunc     func(*ClientOptions)
	scenarioOptionFunc func(*scenario.Options)
)

func (f runOptionFunc) applyRun(c *EngineConfig)               { f(c) }
func (f clusterOptionFunc) applyCluster(c *ClusterConfig)      { f(c) }
func (f swarmOptionFunc) applySwarm(c *SwarmConfig)            { f(c) }
func (f dialOptionFunc) applyDial(o *ClientOptions)            { f(o) }
func (f scenarioOptionFunc) applyScenario(o *scenario.Options) { f(o) }

// ---------------------------------------------------------------------------
// Shared options: one constructor, every entry point that has the knob.
// The exported *Option interface names how far each constructor reaches.

// ObserverOption is a WithObserver value: valid on Run, RunSwarm, and
// RunScenario.
type ObserverOption interface {
	RunOption
	SwarmOption
	ScenarioOption
}

type observerOption struct{ o Observer }

func (v observerOption) applyRun(c *EngineConfig)          { c.Observer = v.o }
func (v observerOption) applySwarm(c *SwarmConfig)         { c.Observer = v.o }
func (v observerOption) applyScenario(o *scenario.Options) { o.Observer = v.o }

// WithObserver attaches an Observer: it receives a RoundStats snapshot
// after every committed round. Combine sinks with MultiObserver; observers
// never perturb the run (same seeds, same probes, same digests). Applies
// to Run, RunSwarm, and RunScenario.
func WithObserver(o Observer) ObserverOption { return observerOption{o} }

// MetricsOption is a WithMetrics value: valid on Dial, RunSwarm,
// RunDistributedCluster, and RunScenario.
type MetricsOption interface {
	DialOption
	SwarmOption
	ClusterOption
	ScenarioOption
}

type metricsOption struct{ reg *Metrics }

func (v metricsOption) applyDial(o *ClientOptions)        { o.Metrics = v.reg }
func (v metricsOption) applySwarm(c *SwarmConfig)         { c.Metrics = v.reg }
func (v metricsOption) applyCluster(c *ClusterConfig)     { c.Client.Metrics = v.reg }
func (v metricsOption) applyScenario(o *scenario.Options) { o.Metrics = v.reg }

// WithMetrics records the run's metric families into reg: client_* on Dial
// (dials, reconnects, retries, backoff time, frames/bytes), swarm_* on
// RunSwarm (scheduler depth, round and barrier latency, transport health),
// and the honest fleet's family on RunDistributedCluster and on
// cluster-backed RunScenario — client_* for the goroutine-per-player
// fleet, swarm_* when the swarm driver runs it (Drive.Swarm, and always
// for scenarios). Share one registry across a fleet to aggregate.
func WithMetrics(reg *Metrics) MetricsOption { return metricsOption{reg} }

// LogfOption is a WithLogf value: valid on RunSwarm,
// RunDistributedCluster, and RunScenario.
type LogfOption interface {
	SwarmOption
	ClusterOption
	ScenarioOption
}

type logfOption struct {
	logf func(format string, args ...any)
}

func (v logfOption) applySwarm(c *SwarmConfig)         { c.Logf = v.logf }
func (v logfOption) applyCluster(c *ClusterConfig)     { c.Logf = v.logf }
func (v logfOption) applyScenario(o *scenario.Options) { o.Logf = v.logf }

// WithLogf directs per-round progress lines to logf. Applies to RunSwarm,
// RunDistributedCluster, and RunScenario.
func WithLogf(logf func(format string, args ...any)) LogfOption { return logfOption{logf} }

// TransportOption is a WithClientOptions value: valid on Dial, RunSwarm,
// and RunDistributedCluster.
type TransportOption interface {
	DialOption
	SwarmOption
	ClusterOption
}

type clientOptionsOption struct{ opt ClientOptions }

func (v clientOptionsOption) applyDial(o *ClientOptions)    { *o = v.opt }
func (v clientOptionsOption) applySwarm(c *SwarmConfig)     { c.Client = v.opt }
func (v clientOptionsOption) applyCluster(c *ClusterConfig) { c.Client = v.opt }

// WithClientOptions sets the whole transport option struct (dialer,
// retries, backoff, timeouts) — the escape hatch for callers that already
// hold a ClientOptions value, and the hook fault injection plugs into for
// swarm and cluster runs. On Dial it replaces the accumulated struct;
// later options still apply on top.
func WithClientOptions(opt ClientOptions) TransportOption { return clientOptionsOption{opt} }

// ---------------------------------------------------------------------------
// Run-only options.

// WithContext lets ctx cancel the run: the engine checks it at every round
// boundary and stops with its error once it is done. Cancellation is
// cooperative and round-aligned — a canceled run never tears a round in
// half, and a run that completes first is unaffected.
func WithContext(ctx context.Context) RunOption {
	return runOptionFunc(func(ec *EngineConfig) { ec.Context = ctx })
}

// ---------------------------------------------------------------------------
// Cluster-only options.

// WithMode selects the cluster's operation mode: ModeSync (the default)
// closes rounds through the global barrier, ModeEpoch replaces it with
// lamport-paced epochs — gossip-style operation that never blocks a frame
// on other players.
func WithMode(m ServerMode) ClusterOption {
	return clusterOptionFunc(func(c *ClusterConfig) { c.Mode = m })
}

// WithEpochTick arms the wall-clock epoch clock for a ModeEpoch cluster:
// epochs also seal every d even when stragglers have not stamped past them
// (trading the byte-exact sync equivalence of pure lamport pacing for
// bounded epoch latency).
func WithEpochTick(d time.Duration) ClusterOption {
	return clusterOptionFunc(func(c *ClusterConfig) { c.EpochTick = d })
}

// ---------------------------------------------------------------------------
// Swarm-only options (connection-group layout).

// WithSwarmGroups sets the number of connection groups; each group owns a
// contiguous sub-block of players and its own pipelined connection
// (default 4, clamped to the player count).
func WithSwarmGroups(n int) SwarmOption {
	return swarmOptionFunc(func(c *SwarmConfig) { c.Groups = n })
}

// WithSwarmChunk caps probes/posts/dones per frame (default 4096).
func WithSwarmChunk(n int) SwarmOption {
	return swarmOptionFunc(func(c *SwarmConfig) { c.Chunk = n })
}

// WithSwarmWindow caps pipelined in-flight frames per connection
// (default 8).
func WithSwarmWindow(n int) SwarmOption {
	return swarmOptionFunc(func(c *SwarmConfig) { c.Window = n })
}

// WithSwarmFallbacks appends fallback addresses — the rest of a replicated
// coordinator group's client ring. Not-leader redirects steer every swarm
// connection to whichever member leads.
func WithSwarmFallbacks(addrs ...string) SwarmOption {
	return swarmOptionFunc(func(c *SwarmConfig) { c.Fallbacks = append(c.Fallbacks, addrs...) })
}

// ---------------------------------------------------------------------------
// Dial-only options (per-client transport knobs).

// WithRetries sets how many times a failed call is retried (reconnecting
// and resuming the session first) before the error is reported. Negative
// disables retries.
func WithRetries(n int) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.Retries = n })
}

// WithBackoff shapes the jittered exponential backoff between retries.
func WithBackoff(base, max time.Duration) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.BackoffBase, o.BackoffMax = base, max })
}

// WithCallTimeout bounds one attempt of a non-barrier call. Negative
// disables the deadline.
func WithCallTimeout(d time.Duration) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.CallTimeout = d })
}

// WithBarrierTimeout bounds one attempt of a Barrier call (default: no
// deadline — barriers block legitimately while other players finish).
func WithBarrierTimeout(d time.Duration) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.BarrierTimeout = d })
}

// WithEpochPoll sets the sleep between epoch pacing polls against a
// ModeEpoch server (default 2ms; negative polls without sleeping). Sync
// servers ignore it — the client learns the mode from the handshake.
func WithEpochPoll(d time.Duration) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.EpochPoll = d })
}

// WithDialer overrides the transport dial — the hook fault injection
// (NewFaultInjector) plugs into for single-client dials.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.Dialer = dial })
}

// WithClientSeed seeds the backoff jitter (default: derived from the
// player id).
func WithClientSeed(seed uint64) DialOption {
	return dialOptionFunc(func(o *ClientOptions) { o.Seed = seed })
}

// ---------------------------------------------------------------------------
// Scenario-only options.

// WithSeed sets the scenario run seed. A scenario file names a workload;
// (file, seed) names a run — replaying the same pair reproduces the
// committed billboard digest byte for byte. The zero seed is a valid,
// deterministic run of its own.
func WithSeed(seed uint64) ScenarioOption {
	return scenarioOptionFunc(func(o *scenario.Options) { o.Seed = seed })
}
