package repro

import (
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/sim"
)

// This file re-exports the observability layer (internal/obs and the sim
// observers): a zero-dependency metrics registry with a Prometheus text
// endpoint, a JSONL run-trace writer, and the Observer plumbing that feeds
// them from a running simulation. Everything here is nil-safe — a nil
// *Metrics or *TraceWriter turns every recording call into a one-branch
// no-op — so instrumented code needs no "is observability on?" guards.

// Metric types.
type (
	// Metrics is a registry of counters, gauges, and histograms. Create
	// with NewMetrics, hand it to servers (BillboardServerConfig.Metrics),
	// clients (WithMetrics), observers (NewMetricsObserver), and expose it
	// with MetricsHandler. All methods are safe for concurrent use and
	// allocation-free on recording paths.
	Metrics = obs.Registry
	// MetricCounter is a monotonically increasing counter handle.
	MetricCounter = obs.Counter
	// MetricGauge is a last-value gauge handle.
	MetricGauge = obs.Gauge
	// MetricHistogram is a fixed-bucket histogram handle.
	MetricHistogram = obs.Histogram
	// TraceWriter emits structured events as JSON Lines. Create with
	// NewTraceWriter; feed it per-round events via NewTraceObserver.
	TraceWriter = obs.Trace
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// MetricsHandler serves reg in Prometheus text exposition format — mount
// it on /metrics (cmd/billboard-server does this under -metrics-addr).
func MetricsHandler(reg *Metrics) http.Handler { return obs.Handler(reg) }

// NewTraceWriter wraps w as a JSONL trace sink (one event per line). The
// writer is safe for concurrent use; the first write error is sticky and
// reported by Err.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTrace(w) }

// Run observers (per-round hooks on the simulation engine).
type (
	// Observer receives a RoundStats snapshot after every committed round
	// (EngineConfig.Observer, or WithObserver on Run).
	Observer = sim.Observer
	// FuncObserver adapts a plain func(RoundStats) to Observer.
	FuncObserver = sim.FuncObserver
	// RoundStats is the per-round snapshot handed to observers.
	RoundStats = sim.RoundStats
	// RoundEvent is the JSONL schema a trace observer emits per round.
	RoundEvent = sim.RoundEvent
)

// MultiObserver fans each round snapshot out to several observers in
// order; nil entries are skipped.
func MultiObserver(observers ...Observer) Observer { return sim.MultiObserver(observers...) }

// NewMetricsObserver returns an Observer recording the run's dynamics into
// reg under the sim_* metric family (rounds, probes, active/satisfied
// players, round wall time).
func NewMetricsObserver(reg *Metrics) Observer { return sim.NewMetricsObserver(reg) }

// NewTraceObserver returns an Observer emitting one RoundEvent per
// committed round into tr, tagged with label and rep (use them to tell
// runs apart when several share a trace file).
func NewTraceObserver(tr *TraceWriter, label string, rep int) Observer {
	return sim.NewTraceObserver(tr, label, rep)
}
