package repro_test

// Golden test for the public API surface of package repro. The facade is
// the module's compatibility contract: anything exported here is supported,
// and nothing should appear or disappear silently. The test parses the
// package's root *.go files (no build step, declarations only) and compares
// the sorted list of exported top-level identifiers against
// testdata/api_surface.golden.
//
// After an intentional API change, regenerate with:
//
//	go test -run TestPublicAPISurface -update .

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api_surface.golden")

const goldenPath = "testdata/api_surface.golden"

// publicSurface parses every non-test .go file in the package root and
// returns one line per exported top-level declaration, sorted.
func publicSurface(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var out []string
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil {
					continue // methods ride on their type's line
				}
				if d.Name.IsExported() {
					out = append(out, "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							out = append(out, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								out = append(out, kind+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func TestPublicAPISurface(t *testing.T) {
	got := strings.Join(publicSurface(t), "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d exported declarations)", goldenPath, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed; run `go test -run TestPublicAPISurface -update .` if intentional.\n%s",
			surfaceDiff(string(want), got))
	}
}

// surfaceDiff renders the symmetric difference between two golden bodies —
// enough to see exactly which declarations appeared or vanished.
func surfaceDiff(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for l := range gotSet {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	return b.String()
}
