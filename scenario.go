package repro

import (
	"context"

	"repro/internal/scenario"
)

// This file is the declarative scenario entry point:
//
//	sc, err := repro.LoadScenario("testdata/scenarios/flash-crowd.json")
//	res, err := repro.RunScenario(ctx, sc, repro.WithSeed(42))
//
// A Scenario names a workload — player arrival/departure processes
// (Poisson, bursts, trace replay), power-law object popularity with drift,
// and phased adversary campaigns — while (scenario, seed) names a run:
// replaying the same pair reproduces the committed billboard digest byte
// for byte, on either backend. Every stochastic decision draws from its
// own keyed RNG stream, so editing one process in a scenario file never
// perturbs the draws of another.

type (
	// Scenario is a declarative workload spec, loaded from JSON
	// (LoadScenario / ParseScenario), picked from the builtin library
	// (BuiltinScenario), or built literally.
	Scenario = scenario.Spec
	// ScenarioWorld sizes the object universe and its popularity profile.
	ScenarioWorld = scenario.World
	// ScenarioProcess is an arrival or departure process.
	ScenarioProcess = scenario.Process
	// ScenarioTraceEvent is one trace-replay event.
	ScenarioTraceEvent = scenario.TraceEvent
	// ScenarioDrift periodically re-plants the good set at Zipf-popular ids.
	ScenarioDrift = scenario.Drift
	// ScenarioPhase is one adversary campaign phase.
	ScenarioPhase = scenario.Phase
	// ScenarioResult is a completed scenario run.
	ScenarioResult = scenario.Result
)

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ParseScenario parses and validates scenario JSON. Unknown fields are
// rejected — a typo in a workload file fails loudly, not silently.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// ScenarioNames lists the builtin scenario library, sorted.
func ScenarioNames() []string { return scenario.Names() }

// BuiltinScenario returns a fresh, validated copy of the named builtin.
func BuiltinScenario(name string) (*Scenario, error) { return scenario.Builtin(name) }

// RunScenario executes a scenario. The context cancels engine-backed runs
// at round boundaries and cluster-backed runs through the fleet driver.
// Accepts WithSeed plus the shared WithObserver, WithMetrics, and WithLogf.
func RunScenario(ctx context.Context, sc *Scenario, opts ...ScenarioOption) (*ScenarioResult, error) {
	var o scenario.Options
	for _, opt := range opts {
		opt.applyScenario(&o)
	}
	return scenario.Run(ctx, sc, o)
}
