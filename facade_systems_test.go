package repro_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro"
)

func TestFacadeAsync(t *testing.T) {
	u, err := repro.NewPlantedUniverse(repro.Planted{M: 100, Good: 2}, repro.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunAsync(repro.AsyncConfig{
		Universe: u, Strategy: repro.NewExploreFollow(4, 100),
		Schedule: repro.ScheduleRoundRobin, N: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, ok := range res.Satisfied {
		if !ok {
			t.Fatalf("player %d unsatisfied", p)
		}
	}
	// The other schedules are reachable through the facade too.
	if repro.ScheduleUniformRandom.Name() != "uniform-random" {
		t.Fatal("schedule naming")
	}
	if repro.ScheduleStarve(3).Name() != "starve-victim" {
		t.Fatal("starve naming")
	}
	if repro.NewSoloStrategy(10).Name() != "solo-random" {
		t.Fatal("solo naming")
	}
}

func TestFacadeBillboardService(t *testing.T) {
	u, err := repro.NewPlantedUniverse(repro.Planted{M: 16, Good: 1}, repro.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	srv, err := repro.NewBillboardServer(repro.BillboardServerConfig{
		Universe: u, Tokens: []string{"a", "b"}, Alpha: 1, Beta: u.Beta(),
		Journal: repro.NewJournalWriter(&log),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c0, err := repro.Dial(context.Background(), addr, 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := repro.Dial(context.Background(), addr, 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	cached := repro.NewCachedReader(c0)
	if err := c1.Post(3, 1, true); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	for _, c := range []*repro.BillboardClient{c0, c1} {
		go func(c *repro.BillboardClient) { defer wg.Done(); _, _ = c.Barrier() }(c)
	}
	wg.Wait()
	cached.Invalidate()
	if cached.VoteCount(3) != 1 {
		t.Fatal("cached read through facade failed")
	}
	if log.Len() == 0 {
		t.Fatal("journal through facade recorded nothing")
	}
}

func TestFacadeDistributedCluster(t *testing.T) {
	u, err := repro.NewPlantedUniverse(repro.Planted{M: 48, Good: 1}, repro.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunDistributedCluster(repro.ClusterConfig{
		Universe: u, Honest: 8, Byzantine: 2,
		Params: repro.DistillParams{}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllFound {
		t.Fatal("distributed cluster through facade did not finish")
	}
}

func TestFacadeTrust(t *testing.T) {
	reports := []repro.TrustReport{
		{Player: 0, Object: 1, Value: 1},
		{Player: 1, Object: 1, Value: 1},
		{Player: 2, Object: 1, Value: 0},
	}
	scores, err := repro.TrustScores(reports, repro.TrustConfig{Players: 3})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= scores[2] {
		t.Fatal("agreeing raters should out-trust the dissenter")
	}
	obj, _, ok := repro.TrustRecommend(reports, scores, 0.5)
	if !ok || obj != 1 {
		t.Fatalf("recommended %d (ok=%v)", obj, ok)
	}
}
