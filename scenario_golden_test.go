package repro_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"testing"

	"repro"
)

// TestGoldenScenarioReplay pins the replay contract for every example
// scenario file: (file, seed 42) → the exact committed billboard, as the
// SHA-256 of its canonical digest. The run is executed twice and must be
// byte-identical both between the two runs and against the pinned hash —
// a change here means the workload semantics or the RNG stream layout
// changed (intentionally or not), not just noise. Update the constants
// deliberately when the change is intended, and say so in the commit.
func TestGoldenScenarioReplay(t *testing.T) {
	golden := map[string]string{
		"adversary-switch.json":    "53d25cd99d99a0d4dd25cb93abfbc6b4d4cc01fa455cea19bbaa84a43406b995",
		"churn-trace.json":         "a9f085bf2e34bb5b4f9ea01fbb53fd115a093e07de989dcf8950b077d7e1ee30",
		"cluster-epoch-churn.json": "c5d2f2f432bebbc18e909f974b46ea3709b81b62fbc9f500c493df7ad6d03c2a",
		"flash-crowd.json":         "5f486e1a7a927e571370499a0ba6544e286c816abdf76cb9eb7bb546f01eb169",
	}
	files, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(golden) {
		t.Fatalf("testdata/scenarios holds %d files, golden map pins %d — add the new file's hash", len(files), len(golden))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			run := func() []byte {
				sc, err := repro.LoadScenario(f)
				if err != nil {
					t.Fatal(err)
				}
				res, err := repro.RunScenario(context.Background(), sc, repro.WithSeed(42))
				if err != nil {
					t.Fatal(err)
				}
				return res.Digest
			}
			a, b := run(), run()
			if !bytes.Equal(a, b) {
				t.Fatal("two runs of the same (file, seed) produced different digests")
			}
			want, ok := golden[filepath.Base(f)]
			if !ok {
				t.Fatalf("no golden hash pinned for %s", f)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256(a)); got != want {
				t.Fatalf("digest hash = %s, want %s", got, want)
			}
		})
	}
}
