package repro_test

import (
	"testing"

	"repro"
	"repro/internal/billboard"
	"repro/internal/expt"
)

// benchOpts keeps the per-iteration work of an experiment benchmark small
// enough for testing.B while still exercising the full pipeline. The bench
// reports the wall time of one scaled experiment run; regenerating the
// EXPERIMENTS.md numbers is cmd/experiments' job at scale 1.
var benchOpts = expt.Options{Scale: 0.15, BaseSeed: 7}

// benchExperiment runs one registry experiment per iteration and reports
// its table row count (a sanity signal that the workload executed).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := expt.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = tab.NumRows()
	}
	b.ReportMetric(float64(rows), "table_rows")
}

// One bench per experiment table (DESIGN.md §5).

func BenchmarkE1_CostVsN(b *testing.B)            { benchExperiment(b, "E1") }
func BenchmarkE2_CostVsAlpha(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3_Corollary5(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE4_LowerBoundWork(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5_LowerBoundSymmetry(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6_AdversarySuite(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7_HighProbability(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8_AlphaGuess(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9_CostClasses(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10_NoLocalTesting(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11_MultiVote(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12_ThreePhase(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13_Iterations(b *testing.B)        { benchExperiment(b, "E13") }

// Ablation benches (DESIGN.md §6).

func BenchmarkA1_AdviceAblation(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2_VoteCapAblation(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3_ThresholdAblation(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4_WindowAblation(b *testing.B)    { benchExperiment(b, "A4") }
func BenchmarkA5_MisguessedAlpha(b *testing.B)   { benchExperiment(b, "A5") }

// Open-problem extension benches (paper §6 / §1.2 motivation).

func BenchmarkX1_AsyncSchedules(b *testing.B)  { benchExperiment(b, "X1") }
func BenchmarkX2_NegativeVeto(b *testing.B)    { benchExperiment(b, "X2") }
func BenchmarkX3_Ownership(b *testing.B)       { benchExperiment(b, "X3") }
func BenchmarkX4_Popularity(b *testing.B)      { benchExperiment(b, "X4") }
func BenchmarkX5_TrustCollective(b *testing.B) { benchExperiment(b, "X5") }
func BenchmarkX6_Churn(b *testing.B)           { benchExperiment(b, "X6") }

// Micro-benchmarks of the substrate hot paths.

func BenchmarkEngineRoundDistill(b *testing.B) {
	// One full DISTILL search per iteration; reports probes per player so
	// regressions in algorithm quality are visible next to time/op.
	var probes float64
	for i := 0; i < b.N; i++ {
		res, err := repro.Run(repro.SearchConfig{
			Players: 1024, Objects: 1024, Alpha: 0.9,
			Adversary: "spam-distinct", Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		probes = res.MeanHonestProbes()
	}
	b.ReportMetric(probes, "probes/player")
}

func BenchmarkBillboardPostCommit(b *testing.B) {
	board, err := billboard.New(billboard.Config{Players: 1 << 16, Objects: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = board.Post(billboard.Post{
			Player: i % (1 << 16), Object: i % (1 << 16), Value: 1, Positive: true,
		})
		if i%1024 == 1023 {
			board.EndRound()
		}
	}
}

func windowCountBoard(b *testing.B) *billboard.Board {
	b.Helper()
	board, err := billboard.New(billboard.Config{Players: 4096, Objects: 4096})
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < 4096; p++ {
		_ = board.Post(billboard.Post{Player: p, Object: p % 64, Value: 1, Positive: true})
		if p%128 == 127 {
			board.EndRound()
		}
	}
	board.EndRound()
	return board
}

// BenchmarkBillboardWindowCount measures the engine's window-count read path:
// the event-offset index plus a reused WindowCounts buffer, as the DISTILL
// hot loop consumes it (allocation-free once warm).
func BenchmarkBillboardWindowCount(b *testing.B) {
	board := windowCountBoard(b)
	var wc billboard.WindowCounts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board.CountVotesInWindowInto(8, 24, &wc)
	}
}

// BenchmarkBillboardWindowCountMap measures the allocating map variant kept
// for callers that need an owned map (e.g. the RPC read path).
func BenchmarkBillboardWindowCountMap(b *testing.B) {
	board := windowCountBoard(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = board.CountVotesInWindow(8, 24)
	}
}
