package repro_test

import (
	"fmt"

	"repro"
)

// ExampleRun demonstrates the one-call entry point: DISTILL on a planted
// universe with a spam adversary.
func ExampleRun() {
	res, err := repro.Run(repro.SearchConfig{
		Players: 256, Objects: 256, Alpha: 0.9,
		Adversary: "spam-distinct", Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("everyone found a good object:", res.AllHonestSatisfied())
	// Output:
	// everyone found a good object: true
}

// ExampleNewEngine shows the lower-level API: explicit universe, protocol,
// and engine construction.
func ExampleNewEngine() {
	u, err := repro.NewUniverse(repro.UniverseConfig{
		Values:       []float64{0, 0, 1, 0},
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		panic(err)
	}
	engine, err := repro.NewEngine(repro.EngineConfig{
		Universe: u,
		Protocol: repro.NewDistill(repro.DistillParams{}),
		N:        4, Alpha: 1, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	res, err := engine.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("good object found by all:", res.AllHonestSatisfied())
	// Output:
	// good object found by all: true
}

// ExampleReplicator runs independent replications in parallel and
// aggregates them.
func ExampleReplicator() {
	results, err := repro.Replicator{
		Reps:     4,
		BaseSeed: 9,
		Build: func(seed uint64) (*repro.Engine, error) {
			u, err := repro.NewPlantedUniverse(repro.Planted{M: 64, Good: 1}, repro.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			return repro.NewEngine(repro.EngineConfig{
				Universe: u, Protocol: repro.NewDistill(repro.DistillParams{}),
				N: 64, Alpha: 0.8, Seed: seed,
			})
		},
	}.Run()
	if err != nil {
		panic(err)
	}
	agg := repro.AggregateResults(results)
	fmt.Println("replications:", agg.Reps, "all succeeded:", agg.SuccessRate == 1)
	// Output:
	// replications: 4 all succeeded: true
}

// ExampleExperiments lists the paper-claim registry.
func ExampleExperiments() {
	fmt.Println("paper experiments:", len(repro.Experiments()))
	fmt.Println("ablations:", len(repro.ExperimentAblations()))
	fmt.Println("extensions:", len(repro.ExperimentExtensions()))
	// Output:
	// paper experiments: 13
	// ablations: 5
	// extensions: 8
}
