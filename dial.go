package repro

import (
	"context"
	"net"
	"time"

	"repro/internal/client"
)

// This file is the options-based entry point to the networked billboard:
//
//	c, err := repro.Dial(ctx, addr, player, token,
//		repro.WithRetries(16),
//		repro.WithMetrics(reg))
//
// The context cancels the dial and every later reconnect/backoff loop on
// the returned client. This is the one supported constructor; the legacy
// deprecated dial wrappers are gone.

// DialOption customizes one Dial call. Options apply in order over the
// zero ClientOptions value; unset knobs keep the documented defaults.
type DialOption func(*ClientOptions)

// WithRetries sets how many times a failed call is retried (reconnecting
// and resuming the session first) before the error is reported. Negative
// disables retries.
func WithRetries(n int) DialOption {
	return func(o *ClientOptions) { o.Retries = n }
}

// WithBackoff shapes the jittered exponential backoff between retries.
func WithBackoff(base, max time.Duration) DialOption {
	return func(o *ClientOptions) { o.BackoffBase, o.BackoffMax = base, max }
}

// WithCallTimeout bounds one attempt of a non-barrier call. Negative
// disables the deadline.
func WithCallTimeout(d time.Duration) DialOption {
	return func(o *ClientOptions) { o.CallTimeout = d }
}

// WithBarrierTimeout bounds one attempt of a Barrier call (default: no
// deadline — barriers block legitimately while other players finish).
func WithBarrierTimeout(d time.Duration) DialOption {
	return func(o *ClientOptions) { o.BarrierTimeout = d }
}

// WithEpochPoll sets the sleep between epoch pacing polls against a
// ModeEpoch server (default 2ms; negative polls without sleeping). Sync
// servers ignore it — the client learns the mode from the handshake.
func WithEpochPoll(d time.Duration) DialOption {
	return func(o *ClientOptions) { o.EpochPoll = d }
}

// WithDialer overrides the transport dial — the hook fault injection
// (NewFaultInjector) plugs into.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return func(o *ClientOptions) { o.Dialer = dial }
}

// WithClientSeed seeds the backoff jitter (default: derived from the
// player id).
func WithClientSeed(seed uint64) DialOption {
	return func(o *ClientOptions) { o.Seed = seed }
}

// WithMetrics records the client_* metric family (dials, reconnects,
// retries, backoff time, frames/bytes sent) into reg. Share one registry
// across a fleet of clients to aggregate.
func WithMetrics(reg *Metrics) DialOption {
	return func(o *ClientOptions) { o.Metrics = reg }
}

// WithClientOptions replaces the whole option struct — the escape hatch
// for callers that already hold a ClientOptions value. Later options still
// apply on top.
func WithClientOptions(opt ClientOptions) DialOption {
	return func(o *ClientOptions) { *o = opt }
}

// Dial connects and authenticates to a billboard server as the given
// player. With no options it uses sane fault-tolerance defaults and no
// metrics. The context bounds the dial's retry/backoff loop and stays
// attached to the client, cancelling every later reconnect and backoff
// sleep; pass context.Background() when no cancellation is needed. A dial
// that exhausts its retries without completing a handshake returns an
// error matching ErrServerClosed.
func Dial(ctx context.Context, addr string, player int, token string, opts ...DialOption) (*BillboardClient, error) {
	var o ClientOptions
	for _, opt := range opts {
		opt(&o)
	}
	return client.DialContext(ctx, addr, player, token, o)
}
