package repro

import (
	"context"

	"repro/internal/client"
)

// This file is the options-based entry point to the networked billboard:
//
//	c, err := repro.Dial(ctx, addr, player, token,
//		repro.WithRetries(16),
//		repro.WithMetrics(reg))
//
// The context cancels the dial and every later reconnect/backoff loop on
// the returned client. This is the one supported constructor; the legacy
// deprecated dial wrappers are gone.

// DialOption and its constructors live in options.go with the rest of the
// unified option layer: the transport knobs (WithRetries, WithBackoff,
// WithCallTimeout, WithBarrierTimeout, WithEpochPoll, WithDialer,
// WithClientSeed) plus the shared WithMetrics and WithClientOptions.

// Dial connects and authenticates to a billboard server as the given
// player. With no options it uses sane fault-tolerance defaults and no
// metrics. The context bounds the dial's retry/backoff loop and stays
// attached to the client, cancelling every later reconnect and backoff
// sleep; pass context.Background() when no cancellation is needed. A dial
// that exhausts its retries without completing a handshake returns an
// error matching ErrServerClosed.
func Dial(ctx context.Context, addr string, player int, token string, opts ...DialOption) (*BillboardClient, error) {
	var o ClientOptions
	for _, opt := range opts {
		opt.applyDial(&o)
	}
	return client.DialContext(ctx, addr, player, token, o)
}
