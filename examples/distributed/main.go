// Distributed: the deployment shape the paper describes — independent
// parties talking to a shared billboard service. This example starts a
// billboard server on a loopback port and runs every player as its own TCP
// client: honest players drive their own per-player DISTILL instances;
// Byzantine players lie over the same wire protocol. The server enforces
// identity tagging and the one-vote rule, so the liars are contained
// exactly as in the in-process simulations.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		honest    = 48
		byzantine = 16
		objects   = 256
	)
	u, err := repro.NewPlantedUniverse(repro.Planted{M: objects, Good: 2}, repro.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting a billboard server and %d TCP clients (%d honest, %d Byzantine)...\n",
		honest+byzantine, honest, byzantine)

	res, err := repro.RunDistributedCluster(repro.ClusterConfig{
		Universe:  u,
		Honest:    honest,
		Byzantine: byzantine,
		Params:    repro.DistillParams{},
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nall honest players found a good object: %v\n", res.AllFound)
	fmt.Printf("mean probes per honest player: %.1f\n", res.MeanProbes)
	fmt.Printf("last player finished in round %d\n", res.Rounds)

	slowest := res.Honest[0]
	for _, h := range res.Honest {
		if h.Probes > slowest.Probes {
			slowest = h
		}
	}
	fmt.Printf("slowest player %d paid %d probes\n", slowest.Player, slowest.Probes)
}
