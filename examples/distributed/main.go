// Distributed: the deployment shape the paper describes — independent
// parties talking to a shared billboard service. This example wires the
// pieces by hand to show the whole options-based flow: start a billboard
// server with a metrics registry, Dial one TCP client per player with
// client-side metrics sharing the same registry, drive per-player DISTILL
// instances for the honest players while Byzantine players lie over the
// same wire protocol, and finally read the run back out of the registry
// (the numbers cmd/billboard-server serves on -metrics-addr).
//
// For the one-call version of this shape, see repro.RunDistributedCluster.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro"
)

const (
	honest    = 48
	byzantine = 16
	objects   = 256
	maxRounds = 4096
	seed      = 11
)

func main() {
	log.SetFlags(0)

	// One registry observes everything: the server feeds the server_* and
	// billboard_* families, every client the client_* family.
	reg := repro.NewMetrics()

	u, err := repro.NewPlantedUniverse(repro.Planted{M: objects, Good: 2}, repro.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	tokens := make([]string, honest+byzantine)
	src := repro.NewRNG(seed)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("tok-%d-%016x", i, src.Uint64())
	}
	srv, err := repro.NewBillboardServer(repro.BillboardServerConfig{
		Universe: u, Tokens: tokens, Alpha: 0.75, Beta: u.Beta(),
		Metrics: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("billboard server on %s; %d TCP clients (%d honest, %d Byzantine)\n",
		addr, honest+byzantine, honest, byzantine)

	// Byzantine players: probe until a bad object turns up, lie that it is
	// good, then idle through barriers so rounds keep committing.
	stop := make(chan struct{})
	var liars sync.WaitGroup
	for p := honest; p < honest+byzantine; p++ {
		liars.Add(1)
		go func(p int) {
			defer liars.Done()
			if err := runLiar(addr, p, tokens[p], reg, stop); err != nil {
				log.Printf("byzantine player %d: %v", p, err)
			}
		}(p)
	}

	// Honest players: one goroutine per player, each with its own client,
	// cache, and DISTILL instance — independent parties in one process.
	type outcome struct {
		player, probes, rounds int
		found                  bool
	}
	results := make([]outcome, honest)
	var wg sync.WaitGroup
	for p := 0; p < honest; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			probes, rounds, found, err := runHonest(addr, p, tokens[p], reg)
			if err != nil {
				log.Printf("honest player %d: %v", p, err)
				return
			}
			results[p] = outcome{p, probes, rounds, found}
		}(p)
	}
	wg.Wait()
	close(stop)
	liars.Wait()

	allFound, totalProbes := true, 0
	slowest := results[0]
	for _, r := range results {
		allFound = allFound && r.found
		totalProbes += r.probes
		if r.probes > slowest.probes {
			slowest = r
		}
	}
	fmt.Printf("\nall honest players found a good object: %v\n", allFound)
	fmt.Printf("mean probes per honest player: %.1f\n", float64(totalProbes)/honest)
	fmt.Printf("slowest player %d paid %d probes\n", slowest.player, slowest.probes)

	// Read the run back out of the shared registry — the same numbers a
	// Prometheus scrape of cmd/billboard-server -metrics-addr would see.
	snap := reg.Snapshot()
	fmt.Println("\nobservability (shared metrics registry):")
	for _, name := range []string{
		"server_rounds_total",
		`server_requests_total{type="post-batch"}`,
		"server_read_cache_hits_total",
		"billboard_posts_total",
		"client_dials_total",
		"client_frames_sent_total",
	} {
		fmt.Printf("  %-42s %.0f\n", name, snap[name])
	}
}

// runHonest drives one honest player's DISTILL over the wire: probe per
// the protocol's schedule, batch the round's posts with the barrier into
// one frame, and halt upon probing a good object.
func runHonest(addr string, player int, token string, reg *repro.Metrics) (probes, rounds int, found bool, err error) {
	c, err := repro.Dial(context.Background(), addr, player, token,
		repro.WithRetries(8),
		repro.WithMetrics(reg))
	if err != nil {
		return 0, 0, false, err
	}
	defer c.Close()

	cached := repro.NewCachedReader(c)
	d := repro.NewDistill(repro.DistillParams{})
	if err := d.Init(repro.ProtocolSetup{
		N:        c.N(),
		Alpha:    c.Alpha(),
		Beta:     c.Beta(),
		Universe: c,
		Board:    cached,
		Rng:      repro.NewRNG(seed).Split(uint64(player)),
	}); err != nil {
		return 0, 0, false, err
	}

	var probeBuf []repro.ProtocolProbe
	var batch []repro.BatchPost
	for round := 0; round < maxRounds; round++ {
		probeBuf = d.Probes(round, []int{player}, probeBuf[:0])
		batch = batch[:0]
		good := false
		for _, pr := range probeBuf {
			res, err := c.Probe(pr.Object)
			if err != nil {
				return probes, round, false, err
			}
			probes++
			positive := c.LocalTesting() && res.Good
			batch = append(batch, repro.BatchPost{Object: pr.Object, Value: res.Value, Positive: positive})
			good = good || positive
		}
		// Protocol v3: the round's posts and its barrier share one frame.
		if _, err := c.PostBatch(batch, true); err != nil {
			return probes, round, false, err
		}
		cached.Invalidate()
		if err := c.Err(); err != nil {
			return probes, round, false, err
		}
		if good {
			return probes, round + 1, true, c.Done()
		}
	}
	_ = c.Done()
	return probes, maxRounds, false, nil
}

// runLiar is a Byzantine player: it posts a false positive for a bad
// object and then keeps arriving at barriers until stop closes.
func runLiar(addr string, player int, token string, reg *repro.Metrics, stop <-chan struct{}) error {
	c, err := repro.Dial(context.Background(), addr, player, token, repro.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer c.Close()

	target := -1
	for i := 0; i < c.M(); i++ {
		obj := (player*31 + i) % c.M()
		res, err := c.Probe(obj)
		if err != nil {
			return err
		}
		if !res.Good {
			target = obj
			break
		}
	}
	if target >= 0 {
		if err := c.Post(target, 1, true); err != nil {
			return err
		}
	}
	for {
		select {
		case <-stop:
			return c.Done()
		default:
		}
		if _, err := c.Barrier(); err != nil {
			// Server closed or we were kicked: either way we are finished.
			return nil
		}
	}
}
