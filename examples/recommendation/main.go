// Recommendation: the §5.3 scenario — an on-line recommendation system
// with no local testing. Nobody can tell whether a movie is "good" from a
// single viewing threshold; good simply means "among the top β fraction by
// value". Players vote for the best object they have personally probed,
// votes move as better objects are found, and the run stops at a prescribed
// time (Theorem 13). Shills keep recommending junk throughout.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		users  = 1000
		movies = 1000
		alpha  = 0.8
	)
	fmt.Printf("%d users, %d movies, %.0f%% honest, shills active\n\n",
		users, movies, alpha*100)

	for _, beta := range []float64{0.001, 0.01, 0.05} {
		var success, rounds float64
		const reps = 5
		for r := 0; r < reps; r++ {
			seed := uint64(100 + r)
			universe, err := repro.NewTopBetaUniverse(movies, beta, repro.NewRNG(seed))
			if err != nil {
				log.Fatal(err)
			}
			adv, err := repro.NewAdversary("random-liar")
			if err != nil {
				log.Fatal(err)
			}
			engine, err := repro.NewEngine(repro.EngineConfig{
				Universe:  universe,
				Protocol:  repro.NewNoLocalTesting(repro.DistillParams{}, 0),
				Adversary: adv,
				N:         users,
				Alpha:     alpha,
				Seed:      seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := engine.Run()
			if err != nil {
				log.Fatal(err)
			}
			success += res.SuccessFraction()
			rounds += float64(res.Rounds)
		}
		fmt.Printf("top %5.1f%% of movies count as good → %.1f%% of honest users end on a good one (%.0f prescribed rounds)\n",
			beta*100, 100*success/reps, rounds/reps)
	}

	fmt.Println("\nHeavy-tailed catalog (Zipf values): a handful of hits dominate.")
	zipf, err := repro.NewZipfUniverse(movies, 0.01, 1.2, repro.NewRNG(8))
	if err != nil {
		log.Fatal(err)
	}
	zengine, err := repro.NewEngine(repro.EngineConfig{
		Universe: zipf,
		Protocol: repro.NewNoLocalTesting(repro.DistillParams{}, 0),
		N:        users,
		Alpha:    alpha,
		Seed:     8,
	})
	if err != nil {
		log.Fatal(err)
	}
	zres, err := zengine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f%% of honest users ended on a top-1%% hit in %d rounds\n",
		100*zres.SuccessFraction(), zres.Rounds)

	fmt.Println("\nSpecial case β = 1/m: finding the single best movie.")
	universe, err := repro.NewTopBetaUniverse(movies, 1.0/movies, repro.NewRNG(9))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(repro.EngineConfig{
		Universe: universe,
		Protocol: repro.NewNoLocalTesting(repro.DistillParams{}, 0),
		N:        users,
		Alpha:    alpha,
		Seed:     9,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f%% of honest users identified the unique best movie in %d rounds\n",
		100*res.SuccessFraction(), res.Rounds)
}
