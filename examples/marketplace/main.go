// Marketplace: the §5.2 scenario. Sellers list items at wildly different
// prices; a buyer pays an item's price to discover whether it is any good.
// A cheap good item exists, but colluding sellers shill for expensive junk.
// The cost-class wrapper (Theorem 12) keeps every honest buyer's total
// spend near the cheapest good item's price, while plain DISTILL — which
// optimizes time, not money — burns through the expensive tiers.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		buyers   = 512
		items    = 1024
		alpha    = 0.75
		baseSeed = 7
		reps     = 5
	)

	fmt.Printf("%d buyers (%.0f%% honest) searching %d priced items; "+
		"colluding sellers vote for expensive junk\n\n", buyers, alpha*100, items)

	for _, algorithm := range []string{"distill-costclasses", "distill"} {
		var totalCost, totalSuccess float64
		for r := 0; r < reps; r++ {
			seed := uint64(baseSeed + r)
			universe, q0 := buildMarket(seed)
			proto, err := repro.NewProtocol(algorithm)
			if err != nil {
				log.Fatal(err)
			}
			adv, err := repro.NewAdversary("collude")
			if err != nil {
				log.Fatal(err)
			}
			engine, err := repro.NewEngine(repro.EngineConfig{
				Universe:  universe,
				Protocol:  proto,
				Adversary: adv,
				N:         buyers,
				Alpha:     alpha,
				Seed:      seed,
				MaxRounds: 1 << 16,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := engine.Run()
			if err != nil {
				log.Fatal(err)
			}
			costs := res.HonestCosts()
			sum := 0.0
			for _, c := range costs {
				sum += c
			}
			totalCost += sum / float64(len(costs))
			totalSuccess += res.SuccessFraction()
			if r == 0 {
				fmt.Printf("%-22s cheapest good item costs %.0f\n", algorithm, q0)
			}
		}
		fmt.Printf("%-22s mean spend per buyer %8.1f   success %.0f%%\n\n",
			algorithm, totalCost/reps, 100*totalSuccess/reps)
	}
}

// buildMarket prices items in three tiers (1, 16, 256) with one good item
// in the cheap tier and one in the luxury tier. Returns the universe and
// the cheapest good price q0.
func buildMarket(seed uint64) (*repro.Universe, float64) {
	src := repro.NewRNG(seed)
	const items = 1024
	values := make([]float64, items)
	costs := make([]float64, items)
	for i := range costs {
		switch {
		case i < items/4:
			costs[i] = 1
		case i < items/2:
			costs[i] = 16
		default:
			costs[i] = 256
		}
	}
	values[src.Intn(items/4)] = 1         // cheap good item
	values[items/2+src.Intn(items/2)] = 1 // luxury good item
	u, err := repro.NewUniverse(repro.UniverseConfig{
		Values:       values,
		Costs:        costs,
		LocalTesting: true,
		Threshold:    0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	return u, u.CheapestGoodCost()
}
