// Custom: extend the library through the public API alone — a hand-written
// Byzantine strategy and a hand-written honest protocol, plugged into the
// same engine and measured against DISTILL.
//
// The adversary ("echo") waits for the first honest vote and then spends
// the entire dishonest vote budget on the single most-recently voted BAD
// object, trying to ride whatever momentum exists. The protocol
// ("two-phase-greedy") explores until any vote appears, then alternates
// between the most-voted object and random exploration.
package main

import (
	"fmt"
	"log"

	"repro"
)

// echoAdversary votes the most recently voted bad object, all at once.
type echoAdversary struct {
	fired bool
}

func (a *echoAdversary) Name() string { return "echo" }

func (a *echoAdversary) Act(ctx *repro.AdvContext) {
	if a.fired {
		return
	}
	voted := ctx.Board.VotedObjects()
	if len(voted) == 0 {
		return
	}
	target := -1
	for _, obj := range voted {
		if !ctx.Universe.IsGood(obj) {
			target = obj
		}
	}
	if target < 0 {
		// Only good objects voted so far: pick any bad one to smear with
		// false momentum.
		for obj := 0; obj < ctx.Universe.M(); obj++ {
			if !ctx.Universe.IsGood(obj) {
				target = obj
				break
			}
		}
	}
	a.fired = true
	for _, p := range ctx.Dishonest {
		_ = ctx.Board.Post(repro.BillboardPost{
			Player: p, Object: target, Value: 1, Positive: true,
		})
	}
}

// greedyProtocol alternates between the most-voted object (not yet tried by
// the deciding player — approximated here with a shared tried set, which is
// legal since all honest players run in lockstep) and a random probe.
type greedyProtocol struct {
	m     int
	src   *repro.RNG
	board repro.BoardReader
	tried map[int]bool
}

func (g *greedyProtocol) Name() string { return "two-phase-greedy" }

func (g *greedyProtocol) Init(setup repro.ProtocolSetup) error {
	g.m = setup.Universe.M()
	g.src = setup.Rng
	g.board = setup.Board
	g.tried = make(map[int]bool)
	return nil
}

func (g *greedyProtocol) PrescribedRounds() int { return 0 }

func (g *greedyProtocol) Probes(round int, active []int, dst []repro.ProtocolProbe) []repro.ProtocolProbe {
	// Shared pick for the round: the most-voted untried object, if any.
	best, bestVotes := -1, 0
	for _, obj := range g.board.VotedObjects() {
		if g.tried[obj] {
			continue
		}
		if v := g.board.VoteCount(obj); v > bestVotes {
			best, bestVotes = obj, v
		}
	}
	if best >= 0 {
		g.tried[best] = true
	}
	for i, player := range active {
		if best >= 0 && round%2 == 0 && i%2 == 0 {
			dst = append(dst, repro.ProtocolProbe{Player: player, Object: best})
			continue
		}
		dst = append(dst, repro.ProtocolProbe{Player: player, Object: g.src.Intn(g.m)})
	}
	return dst
}

func main() {
	log.SetFlags(0)
	const n = 512
	u, err := repro.NewPlantedUniverse(repro.Planted{M: n, Good: 1}, repro.NewRNG(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom adversary + custom protocol, built on the public API only")

	for _, tc := range []struct {
		name  string
		proto repro.Protocol
	}{
		{"two-phase-greedy (ours)", &greedyProtocol{}},
		{"distill (paper)", repro.NewDistill(repro.DistillParams{})},
	} {
		engine, err := repro.NewEngine(repro.EngineConfig{
			Universe:  u,
			Protocol:  tc.proto,
			Adversary: &echoAdversary{},
			N:         n,
			Alpha:     0.6,
			Seed:      5,
			MaxRounds: 1 << 15,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %6.1f probes/player, %4d rounds, success %.0f%%\n",
			tc.name, res.MeanHonestProbes(), res.Rounds, 100*res.SuccessFraction())
	}
	fmt.Println("\n(the echo adversary is contained either way — the one-vote rule caps its budget)")
}
