// Quickstart: run DISTILL on an eBay-like population where 90% of the
// players are honest and one object in a thousand is worth buying, and
// compare the individual probing cost with the paper's baselines. The
// first run also shows the observability hook: a metrics observer
// attached via the options-based Run, read back through a snapshot.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		players = 1024
		objects = 1024
		alpha   = 0.9
	)
	fmt.Printf("searching %d objects with %d players (α=%.1f), spam adversary\n\n",
		objects, players, alpha)

	// One registry aggregates every run below; observers never change the
	// simulated outcome (same seeds → same probes).
	reg := repro.NewMetrics()
	for _, algorithm := range []string{"distill", "async-round-robin", "trivial-random"} {
		res, err := repro.Run(repro.SearchConfig{
			Players:   players,
			Objects:   objects,
			Alpha:     alpha,
			Algorithm: algorithm,
			Adversary: "spam-distinct",
			Seed:      2005, // ICDCS 2005
		}, repro.WithObserver(repro.NewMetricsObserver(reg)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %6.1f probes/player  (%d rounds, %.0f%% found a good object)\n",
			algorithm, res.MeanHonestProbes(), res.Rounds, 100*res.SuccessFraction())
	}
	snap := reg.Snapshot()
	fmt.Printf("\nmetrics across those three runs: %.0f rounds, %.0f probes\n",
		snap["sim_rounds_total"], snap["sim_probes_total"])

	fmt.Println("\nDISTILL's cost stays constant as n grows (Corollary 5):")
	for _, n := range []int{256, 1024, 4096, 16384} {
		res, err := repro.Run(repro.SearchConfig{
			Players: n, Objects: n, Alpha: 0.9,
			Adversary: "spam-distinct", Seed: 2005,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n = %-6d → %5.1f probes/player\n", n, res.MeanHonestProbes())
	}
}
