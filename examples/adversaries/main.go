// Adversaries: pit DISTILL against the entire Byzantine strategy suite at
// several honest fractions, and watch the one-vote rule contain the damage.
// Also demonstrates that slander (negative reports) changes nothing — the
// paper's §6 open question, answered by construction for DISTILL.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	const (
		n    = 1024
		reps = 5
	)
	fmt.Printf("DISTILL vs the adversary suite (n = m = %d, mean of %d runs)\n\n", n, reps)
	fmt.Printf("%-18s", "adversary")
	alphas := []float64{0.9, 0.5, 0.25}
	for _, a := range alphas {
		fmt.Printf("  α=%.2f", a)
	}
	fmt.Println()

	for _, name := range repro.Adversaries() {
		fmt.Printf("%-18s", name)
		for _, alpha := range alphas {
			var probes float64
			for r := 0; r < reps; r++ {
				res, err := repro.Run(repro.SearchConfig{
					Players: n, Objects: n, Alpha: alpha,
					Adversary: name, Seed: uint64(50 + r),
				})
				if err != nil {
					log.Fatal(err)
				}
				if !res.AllHonestSatisfied() {
					log.Fatalf("adversary %q defeated DISTILL", name)
				}
				probes += res.MeanHonestProbes()
			}
			fmt.Printf("  %6.1f", probes/reps)
		}
		fmt.Println()
	}
	fmt.Println("\n(values are mean probes per honest player; every honest player found a good object in every run)")
}
