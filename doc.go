// Package repro is a Go reproduction of "Adaptive Collaboration in
// Peer-to-Peer Systems" (Awerbuch, Patt-Shamir, Peleg, Tuttle — ICDCS 2005).
//
// The paper studies honest players searching for a good object with the
// help of a shared billboard that Byzantine players can also write to. Its
// main result is Algorithm DISTILL, whose expected individual cost is
// O(1/(αβn) + (1/α)·log n/Δ) — constant when almost all players are honest
// — together with nearly matching lower bounds.
//
// This package is the public facade: it re-exports the model (universes,
// billboard, synchronous engine), the algorithms (DISTILL and its §4.1/§5
// variants, plus the baselines the paper compares against), the Byzantine
// adversary suite, the experiment registry E1…E13 that regenerates every
// quantitative claim, the networked billboard service, and the
// observability layer (metrics, traces, per-round observers). See
// README.md for a tour and EXPERIMENTS.md for paper-vs-measured results.
//
// Quickstart:
//
//	res, err := repro.Run(repro.SearchConfig{
//		Players: 1024, Objects: 1024, GoodObjects: 1,
//		Alpha: 0.9, Adversary: "spam-distinct", Seed: 42,
//	})
//	fmt.Println(res.MeanHonestProbes()) // ≈ constant, per Corollary 5
//
// # Observability
//
// The options-based flow, end to end — dial a billboard server with
// client metrics, run an instrumented simulation, then read the numbers
// back (or serve them: cmd/billboard-server exposes the same registry on
// -metrics-addr in Prometheus text format):
//
//	reg := repro.NewMetrics()
//
//	// Networked: a client fleet sharing one registry. The context cancels
//	// the dial and every later reconnect/backoff loop on the client.
//	c, err := repro.Dial(ctx, addr, player, token,
//		repro.WithRetries(16),
//		repro.WithMetrics(reg))
//
//	// In-process: a run streaming per-round stats into the registry
//	// and a JSONL trace. Observers never perturb the run: probes and
//	// rounds are bit-identical at a fixed seed with or without them.
//	tr := repro.NewTraceWriter(traceFile)
//	res, err := repro.Run(cfg, repro.WithObserver(repro.MultiObserver(
//		repro.NewMetricsObserver(reg),
//		repro.NewTraceObserver(tr, "demo", 0),
//	)))
//
//	// Read metrics back: a point-in-time name → value snapshot, or the
//	// Prometheus text form via repro.MetricsHandler(reg).
//	snap := reg.Snapshot()
//	fmt.Println(snap["sim_rounds_total"], snap["client_retries_total"])
//
// # Error contract
//
// The networked API reports terminal conditions through three sentinel
// errors, matched with errors.Is: [ErrServerClosed] (the endpoint is dead
// or unreachable — the dial or a reconnect exhausted its retries without
// completing a handshake), [ErrSessionExpired] (the server no longer holds
// the client's session; its votes and dedup window are gone), and
// [ErrBarrierDeadline] (the server's barrier deadline expelled the player
// as a straggler). Everything short of these — dropped connections, torn
// frames, lost responses, server restarts, shard-lane restarts — is
// absorbed by the client's reconnect/resume/dedup machinery and never
// surfaces to callers.
package repro
