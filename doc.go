// Package repro is a Go reproduction of "Adaptive Collaboration in
// Peer-to-Peer Systems" (Awerbuch, Patt-Shamir, Peleg, Tuttle — ICDCS 2005).
//
// The paper studies honest players searching for a good object with the
// help of a shared billboard that Byzantine players can also write to. Its
// main result is Algorithm DISTILL, whose expected individual cost is
// O(1/(αβn) + (1/α)·log n/Δ) — constant when almost all players are honest
// — together with nearly matching lower bounds.
//
// This package is the public facade: it re-exports the model (universes,
// billboard, synchronous engine), the algorithms (DISTILL and its §4.1/§5
// variants, plus the baselines the paper compares against), the Byzantine
// adversary suite, and the experiment registry E1…E13 that regenerates
// every quantitative claim. See README.md for a tour and EXPERIMENTS.md for
// paper-vs-measured results.
//
// Quickstart:
//
//	res, err := repro.Run(repro.SearchConfig{
//		Players: 1024, Objects: 1024, GoodObjects: 1,
//		Alpha: 0.9, Adversary: "spam-distinct", Seed: 42,
//	})
//	fmt.Println(res.MeanHonestProbes()) // ≈ constant, per Corollary 5
package repro
