package repro

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/billboard"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/object"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file is the core facade, organized in sections:
//
//   - Model types and constructors: universes, engine, billboard views.
//   - Algorithms: DISTILL and variants, baselines, adversaries.
//   - Experiments: the E/A/X registry.
//   - One-call runs: SearchConfig + Run (with functional RunOptions).
//
// The networked substrate lives in facade_systems.go, the options-based
// client entry point in dial.go, and the observability layer (metrics,
// traces, observers) in observability.go.

// ---------------------------------------------------------------------------
// Model types and constructors.

// Re-exported model types. The library's packages live under internal/ so
// their layout can evolve; the aliases below are the supported surface.
type (
	// Universe is the collection of objects being searched.
	Universe = object.Universe
	// UniverseConfig builds a Universe explicitly.
	UniverseConfig = object.Config
	// Planted describes the standard synthetic workload.
	Planted = object.Planted
	// Protocol is an honest search strategy run in lockstep.
	Protocol = sim.Protocol
	// Adversary controls the Byzantine players.
	Adversary = sim.Adversary
	// EngineConfig configures one synchronous simulation run.
	EngineConfig = sim.Config
	// Engine executes one run.
	Engine = sim.Engine
	// Result is the outcome of a run.
	Result = sim.Result
	// Aggregate summarizes replications.
	Aggregate = sim.Aggregate
	// Replicator runs independent replications in parallel.
	Replicator = sim.Replicator
	// DistillParams are the Figure 1 constants.
	DistillParams = core.Params
	// Experiment is one entry of the E1…E13 registry.
	Experiment = expt.Experiment
	// ExperimentOptions tune experiment heaviness.
	ExperimentOptions = expt.Options
	// Table is a rendered result table.
	Table = stats.Table
	// RNG is the deterministic random source used throughout.
	RNG = rng.Source
	// AdvContext is the view an Adversary receives each round; custom
	// Byzantine strategies implement Adversary against it.
	AdvContext = sim.AdvContext
	// BillboardPost is one report on the billboard (what adversaries post).
	BillboardPost = billboard.Post
	// Board is the shared billboard (reachable from AdvContext).
	Board = billboard.Board
	// BoardReader is the read-only billboard view honest protocols consume.
	BoardReader = billboard.Reader
	// ProtocolSetup is what a custom Protocol receives at Init.
	ProtocolSetup = sim.Setup
	// ProtocolProbe is one probe choice emitted by a Protocol.
	ProtocolProbe = sim.Probe
)

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewUniverse builds a universe from an explicit configuration.
func NewUniverse(cfg UniverseConfig) (*Universe, error) { return object.NewUniverse(cfg) }

// NewPlantedUniverse builds the standard planted local-testing workload.
func NewPlantedUniverse(p Planted, src *RNG) (*Universe, error) {
	return object.NewPlanted(p, src)
}

// NewTopBetaUniverse builds a no-local-testing universe whose top β
// fraction of objects (by value) are good.
func NewTopBetaUniverse(m int, beta float64, src *RNG) (*Universe, error) {
	return object.NewTopBeta(m, beta, src)
}

// NewZipfUniverse builds a no-local-testing universe with heavy-tailed
// (Zipf) values — a recommendation catalog where a few items are far better
// than the rest. The top β fraction are good.
func NewZipfUniverse(m int, beta, exponent float64, src *RNG) (*Universe, error) {
	return object.NewZipfTopBeta(m, beta, exponent, src)
}

// ---------------------------------------------------------------------------
// Algorithm constructors (the paper's contribution and its variants).

// NewDistill returns Algorithm DISTILL (Figure 1, Theorem 4).
func NewDistill(params DistillParams) Protocol { return core.NewDistill(params) }

// NewDistillHP returns DISTILL^HP with k1, k2 = Θ(log n) (Theorem 11).
func NewDistillHP(params DistillParams) Protocol { return core.NewDistillHP(params) }

// NewNoLocalTesting returns the §5.3 prescribed-rounds variant
// (Theorem 13). factor scales the prescribed round count; 0 = default.
func NewNoLocalTesting(params DistillParams, factor float64) Protocol {
	return core.NewNoLocalTesting(params, factor)
}

// NewAlphaGuess returns the §5.1 halving wrapper for unknown α; k3 scales
// the per-phase budget (0 = default).
func NewAlphaGuess(params DistillParams, k3 float64) Protocol {
	return core.NewAlphaGuess(params, k3)
}

// NewCostClasses returns the §5.2 wrapper for non-uniform costs
// (Theorem 12); k3 scales the per-class budget (0 = default).
func NewCostClasses(params DistillParams, k3 float64) Protocol {
	return core.NewCostClasses(params, k3)
}

// NewThreePhase returns the illustrative §1.2 algorithm.
func NewThreePhase() Protocol { return core.NewThreePhase() }

// ---------------------------------------------------------------------------
// Baseline constructors (the comparison algorithms).

// NewTrivialRandom returns the billboard-oblivious O(1/β) baseline.
func NewTrivialRandom() Protocol { return baseline.NewTrivialRandom() }

// NewAsyncRoundRobin returns the reconstruction of the prior asynchronous
// algorithm [1] under a round-robin schedule.
func NewAsyncRoundRobin() Protocol { return baseline.NewAsyncRoundRobin() }

// NewOracleCoop returns the full-cooperation Theorem 1 reference.
func NewOracleCoop() Protocol { return baseline.NewOracleCoop() }

// Adversaries returns the names of the Byzantine strategy suite.
func Adversaries() []string { return adversary.Names() }

// NewAdversary returns a fresh instance of the named Byzantine strategy,
// or an error listing the valid names.
func NewAdversary(name string) (Adversary, error) {
	if a := adversary.ByName(name); a != nil {
		return a, nil
	}
	return nil, fmt.Errorf("repro: unknown adversary %q (valid: %v)", name, adversary.Names())
}

// NewEngine prepares one simulation run.
func NewEngine(cfg EngineConfig) (*Engine, error) { return sim.NewEngine(cfg) }

// AggregateResults summarizes replication results.
func AggregateResults(results []*Result) Aggregate { return sim.AggregateResults(results) }

// ---------------------------------------------------------------------------
// Experiment registry.

// Experiments returns the E1…E13 registry in index order.
func Experiments() []Experiment { return expt.All() }

// ExperimentAblations returns the design-choice ablation studies A1…A5.
func ExperimentAblations() []Experiment { return expt.Ablations() }

// ExperimentExtensions returns the extension studies X1…X8 (§1.3/§6 and beyond).
func ExperimentExtensions() []Experiment { return expt.Extensions() }

// ExperimentByID looks up one experiment (e.g. "E3").
func ExperimentByID(id string) (Experiment, error) { return expt.ByID(id) }

// ---------------------------------------------------------------------------
// One-call runs.

// SearchConfig is the high-level one-call entry point: build a planted
// universe, pick an algorithm and adversary by name, and run.
type SearchConfig struct {
	// Players is the total number of players n (required).
	Players int
	// Objects is the number of objects m (required).
	Objects int
	// GoodObjects is the number of planted good objects (default 1).
	GoodObjects int
	// Alpha is the honest fraction (required, in (0, 1]).
	Alpha float64
	// Algorithm names the honest protocol: "distill" (default),
	// "distill-hp", "distill-nlt", "distill-alphaguess",
	// "distill-costclasses", "three-phase", "trivial-random",
	// "async-round-robin", "oracle-coop".
	Algorithm string
	// Adversary names the Byzantine strategy (default "silent").
	Adversary string
	// Seed determines the run (default 1).
	Seed uint64
	// VotesPerPlayer is the §4.1 vote cap f (default 1).
	VotesPerPlayer int
	// HonestErrorRate is the §4.1 erroneous-vote probability.
	HonestErrorRate float64
	// MaxRounds caps the run (default 1<<20).
	MaxRounds int
}

// NewProtocol returns a protocol instance by name with default parameters.
func NewProtocol(name string) (Protocol, error) {
	switch name {
	case "", "distill":
		return NewDistill(DistillParams{}), nil
	case "distill-hp":
		return NewDistillHP(DistillParams{}), nil
	case "distill-nlt":
		return NewNoLocalTesting(DistillParams{}, 0), nil
	case "distill-alphaguess":
		return NewAlphaGuess(DistillParams{}, 0), nil
	case "distill-costclasses":
		return NewCostClasses(DistillParams{}, 0), nil
	case "three-phase":
		return NewThreePhase(), nil
	case "trivial-random":
		return NewTrivialRandom(), nil
	case "async-round-robin":
		return NewAsyncRoundRobin(), nil
	case "oracle-coop":
		return NewOracleCoop(), nil
	default:
		return nil, fmt.Errorf("repro: unknown algorithm %q", name)
	}
}

// ProtocolNames lists the algorithm names NewProtocol accepts.
func ProtocolNames() []string {
	return []string{
		"distill", "distill-hp", "distill-nlt", "distill-alphaguess",
		"distill-costclasses", "three-phase",
		"trivial-random", "async-round-robin", "oracle-coop",
	}
}

// Run executes one search described by cfg and returns the result.
// RunOption and its constructors (WithObserver, WithContext) live in
// options.go with the rest of the unified option layer.
func Run(cfg SearchConfig, opts ...RunOption) (*Result, error) {
	if cfg.GoodObjects == 0 {
		cfg.GoodObjects = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	proto, err := NewProtocol(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	var adv Adversary
	if cfg.Adversary != "" && cfg.Adversary != "silent" {
		adv, err = NewAdversary(cfg.Adversary)
		if err != nil {
			return nil, err
		}
	}
	u, err := NewPlantedUniverse(Planted{M: cfg.Objects, Good: cfg.GoodObjects}, NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	ec := EngineConfig{
		Universe:        u,
		Protocol:        proto,
		Adversary:       adv,
		N:               cfg.Players,
		Alpha:           cfg.Alpha,
		Seed:            cfg.Seed,
		MaxRounds:       cfg.MaxRounds,
		VotesPerPlayer:  cfg.VotesPerPlayer,
		HonestErrorRate: cfg.HonestErrorRate,
	}
	for _, opt := range opts {
		opt.applyRun(&ec)
	}
	engine, err := NewEngine(ec)
	if err != nil {
		return nil, err
	}
	return engine.Run()
}
